"""Tests for drug-centric risk profiles."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig
from repro.core.profile import build_drug_profile
from repro.errors import ConfigError
from repro.knowledge.severity import Severity


@pytest.fixture(scope="module")
def profiled_result():
    """A dataset with one drug showing both a solo signal and an interaction."""
    from repro.faers.schema import CaseReport

    rows = []
    index = 0

    def add(n, drugs, adrs):
        nonlocal index
        for _ in range(n):
            index += 1
            rows.append(CaseReport.build(f"c{index}", drugs, adrs))

    # HERODRUG alone strongly causes SOLOADR (solo signal).
    add(20, ["HERODRUG"], ["SOLOADR"])
    add(10, ["HERODRUG"], ["NOISEADR"])
    # HERODRUG + PARTNER cause COMBOADR (interaction).
    add(12, ["HERODRUG", "PARTNER"], ["COMBOADR"])
    add(6, ["PARTNER"], ["NOISEADR"])
    # Background so PRR has an unexposed margin.
    add(60, ["BGDRUG"], ["NOISEADR"])
    add(20, ["BGDRUG"], ["OTHERADR"])
    return Maras(MarasConfig(min_support=3, clean=False)).run(rows)


class TestDrugProfile:
    def test_exposure_count(self, profiled_result):
        profile = build_drug_profile(profiled_result, "HERODRUG")
        assert profile.n_reports == 42

    def test_solo_signal_detected(self, profiled_result):
        profile = build_drug_profile(profiled_result, "HERODRUG")
        adrs = {signal.adr for signal in profile.solo_signals}
        assert "SOLOADR" in adrs
        solo = next(s for s in profile.solo_signals if s.adr == "SOLOADR")
        assert solo.prr > 2
        assert solo.n_cases == 20

    def test_interaction_clusters_listed_with_ranks(self, profiled_result):
        profile = build_drug_profile(profiled_result, "HERODRUG")
        assert profile.n_interactions >= 1
        catalog = profiled_result.catalog
        drugs_of_first = catalog.labels(profile.clusters[0][1].target.antecedent)
        assert "HERODRUG" in drugs_of_first
        assert all(rank >= 1 for rank, _ in profile.clusters)

    def test_partner_profile_sees_same_cluster(self, profiled_result):
        hero = build_drug_profile(profiled_result, "HERODRUG")
        partner = build_drug_profile(profiled_result, "PARTNER")
        hero_keys = {
            frozenset(c.target.items) for _, c in hero.clusters
        }
        partner_keys = {
            frozenset(c.target.items) for _, c in partner.clusters
        }
        assert hero_keys & partner_keys

    def test_severity_and_body_systems(self, profiled_result):
        profile = build_drug_profile(profiled_result, "HERODRUG")
        assert isinstance(profile.worst_severity, Severity)
        assert profile.body_systems

    def test_background_drug_has_no_interactions(self, profiled_result):
        profile = build_drug_profile(profiled_result, "BGDRUG")
        assert profile.n_interactions == 0

    def test_unknown_drug_rejected(self, profiled_result):
        with pytest.raises(ConfigError, match="unknown drug"):
            build_drug_profile(profiled_result, "NO-SUCH-DRUG")

    def test_adr_label_rejected_as_drug(self, profiled_result):
        with pytest.raises(ConfigError):
            build_drug_profile(profiled_result, "SOLOADR")

    def test_max_solo_signals_cap(self, profiled_result):
        profile = build_drug_profile(
            profiled_result, "HERODRUG", max_solo_signals=0
        )
        assert profile.solo_signals == ()

    def test_describe(self, profiled_result):
        profile = build_drug_profile(profiled_result, "HERODRUG")
        text = profile.describe(profiled_result.catalog)
        assert text.startswith("HERODRUG:")
        assert "solo" in text
