"""Tests for cluster similarity (§4.1 similar-interaction highlighting)."""

from __future__ import annotations

import pytest

from repro.core.similarity import (
    content_similarity,
    shape_descriptor,
    shape_similarity,
    similar_clusters,
)
from repro.errors import ConfigError


class TestShapeDescriptor:
    def test_fixed_length(self, mined_quarter):
        lengths = {
            len(shape_descriptor(cluster))
            for cluster in mined_quarter.clusters[:10]
        }
        assert len(lengths) == 1

    def test_self_similarity_is_one(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        assert shape_similarity(cluster, cluster) == pytest.approx(1.0)

    def test_similarity_symmetric(self, mined_quarter):
        a, b = mined_quarter.clusters[0], mined_quarter.clusters[1]
        assert shape_similarity(a, b) == pytest.approx(shape_similarity(b, a))

    def test_similarity_in_unit_interval(self, mined_quarter):
        a = mined_quarter.clusters[0]
        for b in mined_quarter.clusters[1:8]:
            assert 0.0 < shape_similarity(a, b) <= 1.0

    def test_different_shapes_less_similar(self, mined_quarter):
        clusters = mined_quarter.clusters
        a = clusters[0]
        # a cluster with very different target confidence should be
        # less shape-similar than one with a close confidence
        target = a.target.metrics.confidence
        close = min(
            clusters[1:],
            key=lambda c: abs(c.target.metrics.confidence - target),
        )
        far = max(
            clusters[1:],
            key=lambda c: abs(c.target.metrics.confidence - target),
        )
        if close is not far:
            assert shape_similarity(a, close) >= shape_similarity(a, far)


class TestContentSimilarity:
    def test_identical_rule_is_one(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        assert content_similarity(
            cluster, cluster, mined_quarter.catalog
        ) == pytest.approx(1.0)

    def test_disjoint_rules_are_zero(self, mined_quarter):
        catalog = mined_quarter.catalog
        a = mined_quarter.clusters[0]
        a_items = set(catalog.labels(a.target.items))
        disjoint = next(
            (
                c
                for c in mined_quarter.clusters[1:]
                if not a_items & set(catalog.labels(c.target.items))
            ),
            None,
        )
        if disjoint is None:
            pytest.skip("quarter has no disjoint cluster pair")
        assert content_similarity(a, disjoint, catalog) == 0.0


class TestSimilarClusters:
    def test_top_k_and_order(self, mined_quarter):
        query = mined_quarter.clusters[0]
        neighbors = similar_clusters(
            mined_quarter.clusters, query, mined_quarter.catalog, top_k=5
        )
        assert len(neighbors) == 5
        similarities = [n.similarity for n in neighbors]
        assert similarities == sorted(similarities, reverse=True)

    def test_query_excluded(self, mined_quarter):
        query = mined_quarter.clusters[0]
        neighbors = similar_clusters(
            mined_quarter.clusters, query, mined_quarter.catalog, top_k=50
        )
        assert all(n.cluster is not query for n in neighbors)

    def test_shared_drug_clusters_rank_high_on_content(self, mined_quarter):
        catalog = mined_quarter.catalog
        query = mined_quarter.clusters[0]
        neighbors = similar_clusters(
            mined_quarter.clusters,
            query,
            catalog,
            top_k=3,
            content_weight=1.0,
        )
        query_items = set(catalog.labels(query.target.items))
        best = neighbors[0]
        assert set(catalog.labels(best.cluster.target.items)) & query_items

    def test_content_weight_blending(self, mined_quarter):
        query = mined_quarter.clusters[0]
        for neighbor in similar_clusters(
            mined_quarter.clusters, query, mined_quarter.catalog, top_k=3,
            content_weight=0.5,
        ):
            expected = 0.5 * neighbor.content + 0.5 * neighbor.shape
            assert neighbor.similarity == pytest.approx(expected)

    def test_invalid_parameters(self, mined_quarter):
        query = mined_quarter.clusters[0]
        with pytest.raises(ConfigError):
            similar_clusters(
                mined_quarter.clusters, query, mined_quarter.catalog,
                content_weight=1.5,
            )
        with pytest.raises(ConfigError):
            similar_clusters(
                mined_quarter.clusters, query, mined_quarter.catalog, top_k=0
            )
