"""Tests for JSON export / load round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core.export import (
    FORMAT_VERSION,
    export_result,
    load_export,
    write_export,
)
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError, ValidationError


class TestExport:
    def test_payload_shape(self, mined_quarter):
        payload = export_result(mined_quarter)
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["dataset"]["n_reports"] == len(mined_quarter.dataset)
        assert len(payload["clusters"]) == len(mined_quarter.clusters)

    def test_cluster_record_contents(self, mined_quarter):
        record = export_result(mined_quarter)["clusters"][0]
        assert record["drugs"] and record["adrs"]
        assert set(record["scores"]) == {
            "confidence",
            "lift",
            "exclusiveness_confidence",
            "exclusiveness_lift",
            "improvement",
        }
        assert len(record["context"]) >= 2
        assert record["support"] >= mined_quarter.config.min_support

    def test_case_ids_match_support(self, mined_quarter):
        record = export_result(mined_quarter)["clusters"][0]
        assert len(record["case_ids"]) == record["support"]

    def test_case_ids_optional(self, mined_quarter):
        payload = export_result(mined_quarter, include_case_ids=False)
        assert "case_ids" not in payload["clusters"][0]

    def test_json_serializable(self, mined_quarter):
        json.dumps(export_result(mined_quarter))


class TestRoundTrip:
    def test_write_and_load(self, mined_quarter, tmp_path):
        path = write_export(mined_quarter, tmp_path / "q1.json")
        loaded = load_export(path)
        assert loaded.n_reports == len(mined_quarter.dataset)
        assert len(loaded.clusters) == len(mined_quarter.clusters)

    def test_scores_survive_round_trip(self, mined_quarter, tmp_path):
        path = write_export(mined_quarter, tmp_path / "q1.json")
        loaded = load_export(path)
        live_top = mined_quarter.rank(
            RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=5
        )
        exported_top = loaded.top("exclusiveness_confidence", k=5)
        live_keys = [
            (
                mined_quarter.catalog.labels(e.cluster.target.antecedent),
                mined_quarter.catalog.labels(e.cluster.target.consequent),
            )
            for e in live_top
        ]
        assert [c.key for c in exported_top] == live_keys

    def test_load_from_dict(self, mined_quarter):
        loaded = load_export(export_result(mined_quarter))
        assert loaded.clusters

    def test_unknown_version_rejected(self, mined_quarter):
        payload = export_result(mined_quarter)
        payload["format_version"] = 999
        with pytest.raises(ValidationError, match="version"):
            load_export(payload)

    def test_unknown_score_name_rejected(self, mined_quarter):
        loaded = load_export(export_result(mined_quarter))
        with pytest.raises(ConfigError, match="unknown score"):
            loaded.top("astrology")

    def test_top_on_empty_export(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "quarter": "",
            "dataset": {"n_reports": 0, "n_drugs": 0, "n_adrs": 0},
            "clusters": [],
        }
        assert load_export(payload).top("confidence") == []
