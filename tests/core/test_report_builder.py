"""Tests for the quarterly markdown report builder."""

from __future__ import annotations

import pytest

from repro.core.report_builder import build_quarter_report, write_quarter_report
from repro.errors import ConfigError


class TestBuildQuarterReport:
    def test_sections_present(self, mined_quarter):
        report = build_quarter_report(mined_quarter)
        assert report.startswith("# MeDIAR quarterly surveillance report")
        assert "## Dataset" in report
        assert "## Top" in report
        assert "### #1" in report

    def test_dataset_row_matches_stats(self, mined_quarter):
        report = build_quarter_report(mined_quarter)
        stats = mined_quarter.dataset.stats()
        assert f"| {stats.n_reports:,d} |" in report

    def test_top_k_rows(self, mined_quarter):
        report = build_quarter_report(mined_quarter, top_k=4)
        ranking_section = report.split("## Top")[1]
        data_rows = [
            line
            for line in ranking_section.splitlines()
            if line.startswith("| ") and not line.startswith("| #")
            and "---" not in line
        ]
        # 4 ranking rows plus detail-table rows further down; check the
        # ranking table specifically via rank prefixes.
        assert all(f"| {rank} |" in ranking_section for rank in (1, 2, 3, 4))

    def test_detail_sections_limited(self, mined_quarter):
        report = build_quarter_report(mined_quarter, detail_k=2)
        assert "### #1" in report and "### #2" in report
        assert "### #3" not in report

    def test_novelty_and_severity_columns(self, mined_quarter):
        report = build_quarter_report(mined_quarter)
        assert "| novelty | severity |" in report
        assert any(word in report for word in ("unknown", "known"))

    def test_sample_cases_listed(self, mined_quarter):
        report = build_quarter_report(mined_quarter, sample_cases=2)
        assert "Sample supporting cases:" in report

    def test_sample_cases_zero_omits_section(self, mined_quarter):
        report = build_quarter_report(mined_quarter, sample_cases=0)
        assert "Sample supporting cases:" not in report

    def test_rule_counts_section_when_available(self, small_quarter_reports):
        from repro.core import Maras, MarasConfig

        result = Maras(
            MarasConfig(min_support=8, clean=False, count_rule_space=True)
        ).run(small_quarter_reports[:600])
        report = build_quarter_report(result)
        assert "## Rule-space reduction" in report

    def test_invalid_top_k(self, mined_quarter):
        with pytest.raises(ConfigError):
            build_quarter_report(mined_quarter, top_k=0)

    def test_write_to_disk(self, mined_quarter, tmp_path):
        path = write_quarter_report(mined_quarter, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# MeDIAR")

    def test_body_system_column(self, mined_quarter):
        report = build_quarter_report(mined_quarter)
        assert "| body systems |" in report
        assert "disorders" in report
