"""Tests for incremental surveillance over a report stream."""

from __future__ import annotations

import pytest

from repro.core import MarasConfig
from repro.core.incremental import (
    SurveillanceMonitor,
    cluster_key,
    spearman_correlation,
)
from repro.errors import ConfigError
from repro.faers.schema import CaseReport


def batches_from(reports, n_batches=3):
    size = len(reports) // n_batches
    return [
        reports[i * size : (i + 1) * size if i < n_batches - 1 else len(reports)]
        for i in range(n_batches)
    ]


class TestSpearman:
    def test_identical_rankings(self):
        ranks = {("a",): 1, ("b",): 2, ("c",): 3}
        assert spearman_correlation(ranks, ranks) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        old = {("a",): 1, ("b",): 2, ("c",): 3}
        new = {("a",): 3, ("b",): 2, ("c",): 1}
        assert spearman_correlation(old, new) == pytest.approx(-1.0)

    def test_too_few_shared_is_none(self):
        assert spearman_correlation({("a",): 1}, {("a",): 1}) is None

    def test_disjoint_is_none(self):
        assert spearman_correlation({("a",): 1}, {("b",): 1}) is None

    def test_restricted_to_shared_subset(self):
        old = {("a",): 1, ("b",): 2, ("c",): 3, ("x",): 4}
        new = {("a",): 5, ("b",): 6, ("c",): 7, ("y",): 1}
        assert spearman_correlation(old, new) == pytest.approx(1.0)


class TestSurveillanceMonitor:
    @pytest.fixture
    def monitor(self):
        return SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False), riser_threshold=3
        )

    def test_first_batch_all_new(self, monitor, small_quarter_reports):
        first = batches_from(small_quarter_reports)[0]
        delta = monitor.ingest(first)
        assert delta.batch_index == 1
        assert delta.n_reports_total == len(first)
        assert delta.rank_correlation is None
        assert not delta.dropped
        assert len(delta.newly_surfaced) == len(monitor.result.clusters)

    def test_growth_accumulates(self, monitor, small_quarter_reports):
        batches = batches_from(small_quarter_reports)
        for batch in batches:
            monitor.ingest(batch)
        assert len(monitor) == len(small_quarter_reports)
        assert len(monitor.history) == len(batches)

    def test_rank_correlation_high_between_large_batches(
        self, monitor, small_quarter_reports
    ):
        batches = batches_from(small_quarter_reports, n_batches=2)
        monitor.ingest(batches[0])
        delta = monitor.ingest(batches[1])
        assert delta.rank_correlation is not None
        # Doubling the same-distribution data must not reshuffle wholesale.
        assert delta.rank_correlation > 0.3

    def test_new_signal_surfaces_in_later_batch(self, monitor):
        background = [
            CaseReport.build(f"bg{i}", [f"D{i % 7}"], [f"A{i % 5}"])
            for i in range(60)
        ]
        monitor.ingest(background)
        surge = [
            CaseReport.build(f"new{i}", ["NEWDRUG1", "NEWDRUG2"], ["NEWADR"])
            for i in range(8)
        ]
        delta = monitor.ingest(surge)
        assert (("NEWDRUG1", "NEWDRUG2"), ("NEWADR",)) in delta.newly_surfaced

    def test_duplicate_case_ids_ignored(self, monitor, small_quarter_reports):
        first = batches_from(small_quarter_reports)[0]
        monitor.ingest(first)
        before = len(monitor)
        monitor.ingest(first)  # same case ids again
        assert len(monitor) == before

    def test_watchlist_sorted_by_rank(self, monitor, small_quarter_reports):
        monitor.ingest(small_quarter_reports[:700])
        watchlist = monitor.watchlist(top_k=10)
        ranks = [rank for _, rank in watchlist]
        assert ranks == sorted(ranks)
        assert all(rank <= 10 for rank in ranks)

    def test_result_before_ingest_rejected(self, monitor):
        with pytest.raises(ConfigError):
            monitor.result
        with pytest.raises(ConfigError):
            monitor.watchlist()

    def test_empty_first_batch_rejected(self, monitor):
        with pytest.raises(ConfigError, match="no new reports"):
            monitor.ingest([])

    def test_invalid_riser_threshold(self):
        with pytest.raises(ConfigError):
            SurveillanceMonitor(riser_threshold=0)

    def test_cluster_key_is_label_based(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        key = cluster_key(mined_quarter, cluster)
        assert all(isinstance(label, str) for label in key[0] + key[1])
