"""Tests for incremental surveillance over a report stream."""

from __future__ import annotations

import pytest

from repro.core import MarasConfig
from repro.core.incremental import (
    SurveillanceMonitor,
    cluster_key,
    spearman_correlation,
)
from repro.errors import ConfigError
from repro.faers.schema import CaseReport


def batches_from(reports, n_batches=3):
    size = len(reports) // n_batches
    return [
        reports[i * size : (i + 1) * size if i < n_batches - 1 else len(reports)]
        for i in range(n_batches)
    ]


class TestSpearman:
    def test_identical_rankings(self):
        ranks = {("a",): 1, ("b",): 2, ("c",): 3}
        assert spearman_correlation(ranks, ranks) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        old = {("a",): 1, ("b",): 2, ("c",): 3}
        new = {("a",): 3, ("b",): 2, ("c",): 1}
        assert spearman_correlation(old, new) == pytest.approx(-1.0)

    def test_too_few_shared_is_none(self):
        assert spearman_correlation({("a",): 1}, {("a",): 1}) is None

    def test_disjoint_is_none(self):
        assert spearman_correlation({("a",): 1}, {("b",): 1}) is None

    def test_restricted_to_shared_subset(self):
        old = {("a",): 1, ("b",): 2, ("c",): 3, ("x",): 4}
        new = {("a",): 5, ("b",): 6, ("c",): 7, ("y",): 1}
        assert spearman_correlation(old, new) == pytest.approx(1.0)

    def test_ties_use_average_ranks(self):
        """Tie-heavy rankings: ρ must not depend on key/insertion order."""
        old = {("a",): 1, ("b",): 2, ("c",): 2, ("d",): 2, ("e",): 5}
        new = {("a",): 1, ("b",): 2, ("c",): 2, ("d",): 2, ("e",): 5}
        rho = spearman_correlation(old, new)
        # With average ranks on both sides the tied block contributes no
        # disagreement at all: identical rankings give exactly 1.
        assert rho == pytest.approx(1.0)

    def test_tie_result_independent_of_insertion_order(self):
        keys = [("a",), ("b",), ("c",), ("d",), ("e",)]
        values_old = {keys[0]: 1, keys[1]: 2, keys[2]: 2, keys[3]: 4, keys[4]: 5}
        values_new = {keys[0]: 5, keys[1]: 3, keys[2]: 3, keys[3]: 2, keys[4]: 1}
        rho_forward = spearman_correlation(values_old, values_new)
        # Rebuild both dicts with reversed insertion order.
        reversed_old = dict(reversed(list(values_old.items())))
        reversed_new = dict(reversed(list(values_new.items())))
        rho_reversed = spearman_correlation(reversed_old, reversed_new)
        assert rho_forward == pytest.approx(rho_reversed)
        # new's fractional ranks are exactly (6 - old's), a perfect
        # reversal even through the tied block: ρ = -1.
        assert rho_forward == pytest.approx(-1.0)

    def test_all_tied_side_is_none(self):
        old = {("a",): 1, ("b",): 1, ("c",): 1}
        new = {("a",): 1, ("b",): 2, ("c",): 3}
        assert spearman_correlation(old, new) is None


class TestSurveillanceMonitor:
    @pytest.fixture
    def monitor(self):
        return SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False), riser_threshold=3
        )

    def test_first_batch_all_new(self, monitor, small_quarter_reports):
        first = batches_from(small_quarter_reports)[0]
        delta = monitor.ingest(first)
        assert delta.batch_index == 1
        assert delta.n_reports_total == len(first)
        assert delta.rank_correlation is None
        assert not delta.dropped
        assert len(delta.newly_surfaced) == len(monitor.result.clusters)

    def test_growth_accumulates(self, monitor, small_quarter_reports):
        batches = batches_from(small_quarter_reports)
        for batch in batches:
            monitor.ingest(batch)
        assert len(monitor) == len(small_quarter_reports)
        assert len(monitor.history) == len(batches)

    def test_rank_correlation_high_between_large_batches(
        self, monitor, small_quarter_reports
    ):
        batches = batches_from(small_quarter_reports, n_batches=2)
        monitor.ingest(batches[0])
        delta = monitor.ingest(batches[1])
        assert delta.rank_correlation is not None
        # Doubling the same-distribution data must not reshuffle wholesale.
        assert delta.rank_correlation > 0.3

    def test_new_signal_surfaces_in_later_batch(self, monitor):
        background = [
            CaseReport.build(f"bg{i}", [f"D{i % 7}"], [f"A{i % 5}"])
            for i in range(60)
        ]
        monitor.ingest(background)
        surge = [
            CaseReport.build(f"new{i}", ["NEWDRUG1", "NEWDRUG2"], ["NEWADR"])
            for i in range(8)
        ]
        delta = monitor.ingest(surge)
        assert (("NEWDRUG1", "NEWDRUG2"), ("NEWADR",)) in delta.newly_surfaced

    def test_duplicate_case_ids_ignored(self, monitor, small_quarter_reports):
        first = batches_from(small_quarter_reports)[0]
        monitor.ingest(first)
        before = len(monitor)
        monitor.ingest(first)  # same case ids again
        assert len(monitor) == before

    def test_watchlist_sorted_by_rank(self, monitor, small_quarter_reports):
        monitor.ingest(small_quarter_reports[:700])
        watchlist = monitor.watchlist(top_k=10)
        ranks = [rank for _, rank in watchlist]
        assert ranks == sorted(ranks)
        assert all(rank <= 10 for rank in ranks)

    def test_result_before_ingest_rejected(self, monitor):
        with pytest.raises(ConfigError):
            monitor.result
        with pytest.raises(ConfigError):
            monitor.watchlist()

    def test_empty_first_batch_rejected(self, monitor):
        with pytest.raises(ConfigError, match="no new reports"):
            monitor.ingest([])

    def test_invalid_riser_threshold(self):
        with pytest.raises(ConfigError):
            SurveillanceMonitor(riser_threshold=0)

    def test_cluster_key_is_label_based(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        key = cluster_key(mined_quarter, cluster)
        assert all(isinstance(label, str) for label in key[0] + key[1])


class TestSurveillanceCleaning:
    """Regression: surveillance used to bypass the cleaner entirely.

    ``SurveillanceMonitor.ingest`` wrapped accumulated reports in a
    ``ReportDataset`` and ``Maras.run`` skipped cleaning for dataset
    inputs, so case-version merging and name normalization silently
    never ran in surveillance mode, even with ``config.clean=True``.
    """

    @staticmethod
    def _raw_stream():
        """Two batches with duplicate case versions and misspelled names."""
        batch1 = [
            # Dosage tails + case variants — cleaning collapses all of
            # these onto the canonical ASPIRIN/WARFARIN pair. Each case
            # carries a distinguishing extra ADR so none are dropped as
            # exact content duplicates.
            CaseReport.build("c1", ["aspirin 81 mg", "warfarin"], ["haemorrhage"]),
            CaseReport.build(
                "c2", ["ASPIRIN", "WARFARIN TAB"], ["HAEMORRHAGE", "DIZZINESS"]
            ),
            CaseReport.build("n1", ["NEXIUM"], ["PAIN"]),
            CaseReport.build("n2", ["NEXIUM", "IBUPROFEN"], ["PAIN"]),
        ]
        batch2 = [
            # Follow-up version of c1 (same case id, extra ADR): the
            # cleaner must merge it, not drop it.
            CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE", "NAUSEA"]),
            CaseReport.build("c3", ["Aspirin", "Warfarin"], ["Haemorrhage", "Rash"]),
            CaseReport.build(
                "c4", ["ASPIRIN 100MG", "WARFARIN"], ["HAEMORRHAGE", "VOMITING"]
            ),
            CaseReport.build("n3", ["NEXIUM"], ["PAIN", "NAUSEA"]),
        ]
        return batch1, batch2

    def test_surveillance_matches_one_shot_cleaned_run(self):
        batch1, batch2 = self._raw_stream()
        config = MarasConfig(min_support=3, clean=True)

        monitor = SurveillanceMonitor(config)
        monitor.ingest(batch1)
        monitor.ingest(batch2)

        from repro.core import Maras

        one_shot = Maras(config).run(batch1 + batch2)
        assert one_shot.clusters  # the planted signal must surface

        monitor_keys = {
            cluster_key(monitor.result, c) for c in monitor.result.clusters
        }
        one_shot_keys = {
            cluster_key(one_shot, c) for c in one_shot.clusters
        }
        assert monitor_keys == one_shot_keys
        assert (("ASPIRIN", "WARFARIN"), ("HAEMORRHAGE",)) in monitor_keys

    def test_cleaning_stats_present_in_surveillance_result(self):
        batch1, batch2 = self._raw_stream()
        monitor = SurveillanceMonitor(MarasConfig(min_support=3, clean=True))
        monitor.ingest(batch1)
        monitor.ingest(batch2)
        stats = monitor.result.cleaning_stats
        assert stats is not None
        assert stats.cases_merged >= 1  # c1's follow-up version

    def test_follow_up_version_reaches_the_cleaner(self):
        """A later version of a seen case must not be silently dropped."""
        batch1, batch2 = self._raw_stream()
        monitor = SurveillanceMonitor(MarasConfig(min_support=3, clean=True))
        monitor.ingest(batch1)
        monitor.ingest(batch2)
        # c1 v2 added NAUSEA; after merging, the supporting report for
        # c1 must mention it.
        reports = {r.case_id: r for r in monitor.result.dataset}
        assert "NAUSEA" in reports["c1"].adrs


class TestIngestAccounting:
    """Regression: with ``clean=True`` every raw row used to count as
    "fresh" in ``surveillance.reports_ingested`` — follow-up versions
    and even resubmissions of a seen case inflated the intake counter,
    and ``_seen_case_ids`` was dead state on that path."""

    @staticmethod
    def _stream():
        first = [
            CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c2", ["NEXIUM"], ["PAIN"]),
        ]
        second = [
            # Follow-up of c1 plus one genuinely new case.
            CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["NAUSEA"]),
            CaseReport.build("c3", ["NEXIUM"], ["PAIN", "RASH"]),
        ]
        return first, second

    @pytest.mark.parametrize("clean", [True, False])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_fresh_counts_new_cases_not_raw_rows(self, clean, incremental):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        first, second = self._stream()
        with SurveillanceMonitor(
            MarasConfig(min_support=1, clean=clean, incremental=incremental),
            registry=registry,
        ) as monitor:
            monitor.ingest(first)
            monitor.ingest(second)
        counters = registry.snapshot().counters
        assert counters["surveillance.reports_ingested"] == 3  # c1 c2 c3
        assert counters["surveillance.case_updates"] == 1  # c1's follow-up

    @pytest.mark.parametrize("clean", [True, False])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_empty_batch_after_first_is_a_no_op(self, clean, incremental):
        first, _ = self._stream()
        with SurveillanceMonitor(
            MarasConfig(min_support=1, clean=clean, incremental=incremental)
        ) as monitor:
            monitor.ingest(first)
            before = {
                cluster_key(monitor.result, c) for c in monitor.result.clusters
            }
            delta = monitor.ingest([])
            after = {
                cluster_key(monitor.result, c) for c in monitor.result.clusters
            }
        assert after == before
        assert not delta.newly_surfaced
        assert not delta.dropped

    @pytest.mark.parametrize("clean", [True, False])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_all_duplicates_batch(self, clean, incremental):
        """A batch of exact resubmissions must not change the result."""
        first, _ = self._stream()
        with SurveillanceMonitor(
            MarasConfig(min_support=1, clean=clean, incremental=incremental)
        ) as monitor:
            monitor.ingest(first)
            before = {
                cluster_key(monitor.result, c) for c in monitor.result.clusters
            }
            delta = monitor.ingest(list(first))  # same rows again
            after = {
                cluster_key(monitor.result, c) for c in monitor.result.clusters
            }
        assert after == before
        assert not delta.newly_surfaced
        assert not delta.dropped

    def test_empty_first_batch_rejected_in_clean_mode(self):
        monitor = SurveillanceMonitor(MarasConfig(min_support=1, clean=True))
        with pytest.raises(ConfigError, match="no new reports"):
            monitor.ingest([])


class TestFollowUpRemovingDrug:
    """A follow-up version listing *fewer* drugs: §5.2 union-merge keeps
    the superset, and the incremental engine must agree with the
    one-shot run byte for byte (the shrunken row exercises the
    rebuild-guarded removal path, never silent bit corruption)."""

    @staticmethod
    def _stream():
        first = [
            CaseReport.build(
                "c1", ["ASPIRIN", "WARFARIN", "NEXIUM"], ["HAEMORRHAGE"]
            ),
            CaseReport.build("c2", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c3", ["NEXIUM"], ["PAIN"]),
        ]
        second = [
            # c1's follow-up drops NEXIUM and adds an ADR.
            CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["NAUSEA"]),
            CaseReport.build("c4", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
        ]
        return first, second

    def test_incremental_matches_one_shot(self):
        import json

        from repro.core import Maras
        from repro.core.export import export_result

        first, second = self._stream()
        config = MarasConfig(min_support=1, clean=True)
        reference = Maras(config).run(first + second)
        with SurveillanceMonitor(
            MarasConfig(min_support=1, clean=True, incremental=True)
        ) as monitor:
            monitor.ingest(first)
            monitor.ingest(second)
            result = monitor.result
        dump = lambda r: json.dumps(export_result(r), sort_keys=True)  # noqa: E731
        assert dump(result) == dump(reference)
        # Union merge: the dropped drug survives in the merged case.
        merged = {r.case_id: r for r in result.dataset}
        assert "NEXIUM" in merged["c1"].drugs
        assert "NAUSEA" in merged["c1"].adrs


class TestUpdateOnlyBatch:
    """A batch of *only* follow-ups: the transaction count is unchanged,
    which arms whole-artifact reuse — but a follow-up adding one item
    grows the support of every sub-itemset its row now covers, so any
    reused rule/cluster whose itemset meets the delta's items would
    serve stale confidence/lift (the hypothesis-found regression)."""

    @staticmethod
    def _stream():
        first = [
            CaseReport.build("c1", ["ASPIRIN"], ["NAUSEA"]),
            CaseReport.build(
                "c2", ["ASPIRIN", "WARFARIN"], ["NAUSEA", "HAEMORRHAGE"]
            ),
        ]
        # No new cases: c1's follow-up adds HAEMORRHAGE, which doubles
        # the support of the {NAUSEA, HAEMORRHAGE} consequent while the
        # {ASPIRIN, WARFARIN, ...} itemset's own tidset is untouched.
        second = [CaseReport.build("c1", ["ASPIRIN"], ["HAEMORRHAGE"])]
        return first, second

    def test_subset_support_growth_invalidates_reuse(self):
        import json

        from repro.core import Maras
        from repro.core.export import export_result

        first, second = self._stream()
        reference = Maras(MarasConfig(min_support=1, clean=True)).run(
            first + second
        )
        with SurveillanceMonitor(
            MarasConfig(min_support=1, clean=True, incremental=True)
        ) as monitor:
            monitor.ingest(first)
            monitor.ingest(second)
            result = monitor.result
        dump = lambda r: json.dumps(export_result(r), sort_keys=True)  # noqa: E731
        assert dump(result) == dump(reference)
