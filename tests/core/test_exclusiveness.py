"""Tests for the exclusiveness score (Eqs 3.3-3.5)."""

from __future__ import annotations

import pytest

from repro.core.context import build_cluster
from repro.core.exclusiveness import (
    DECAY_FUNCTIONS,
    ExclusivenessConfig,
    exclusiveness,
    exclusiveness_cv,
    exclusiveness_simple,
    exponential_decay,
    linear_decay,
    no_decay,
    score_clusters,
)
from repro.errors import ConfigError
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules
from repro.mining.measures import coefficient_of_variation


class TestEq33Simple:
    def test_mean_contrast(self):
        assert exclusiveness_simple(0.9, [0.1, 0.3]) == pytest.approx(0.7)

    def test_strong_context_gives_negative(self):
        assert exclusiveness_simple(0.3, [0.8, 0.9]) < 0

    def test_empty_context_degenerates_to_p(self):
        assert exclusiveness_simple(0.42, []) == 0.42


class TestEq34CVPenalty:
    def test_theta_zero_reduces_to_simple(self):
        values = [0.1, 0.5, 0.2]
        assert exclusiveness_cv(0.9, values, theta=0.0) == pytest.approx(
            exclusiveness_simple(0.9, values)
        )

    def test_uneven_context_penalized(self):
        even = exclusiveness_cv(0.9, [0.3, 0.3], theta=1.0)
        uneven = exclusiveness_cv(0.9, [0.05, 0.55], theta=1.0)
        # Same mean, but the context with one strong sub-rule scores lower.
        assert uneven < even

    def test_penalty_formula(self):
        values = [0.2, 0.4]
        expected = exclusiveness_simple(0.9, values) * (
            1 - 0.5 * coefficient_of_variation(values)
        )
        assert exclusiveness_cv(0.9, values, theta=0.5) == pytest.approx(expected)

    def test_invalid_theta(self):
        with pytest.raises(ConfigError):
            exclusiveness_cv(0.5, [0.1], theta=2.0)


class TestDecayFunctions:
    def test_linear_matches_paper_formula(self):
        # weight = 1 − (k−1)/n
        assert linear_decay(1, 3) == pytest.approx(1.0)
        assert linear_decay(2, 3) == pytest.approx(2 / 3)
        assert linear_decay(3, 4) == pytest.approx(0.5)

    def test_no_decay_constant(self):
        assert no_decay(1, 3) == no_decay(5, 3) == 1.0

    def test_exponential_halves(self):
        assert exponential_decay(1, 9) == 1.0
        assert exponential_decay(3, 9) == 0.25

    def test_registry_complete(self):
        assert set(DECAY_FUNCTIONS) == {"linear", "none", "exponential"}


class TestExclusivenessConfig:
    def test_defaults(self):
        config = ExclusivenessConfig()
        assert config.measure == "confidence"
        assert config.decay == "linear"

    def test_bad_theta(self):
        with pytest.raises(ConfigError):
            ExclusivenessConfig(theta=-0.1)

    def test_bad_decay(self):
        with pytest.raises(ConfigError):
            ExclusivenessConfig(decay="sideways")


class TestEq35FullScore:
    def _cluster(self, database, n_drugs=2):
        rules = partitioned_rules(fpclose(database, 2), database)
        rule = next(r for r in rules if len(r.antecedent) == n_drugs)
        return build_cluster(rule, database)

    def test_exclusive_signal_scores_high(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        signal = next(
            r
            for r in rules
            if r.antecedent == catalog.encode(["D1", "D2"])
            and catalog.encode(["X"]) <= r.consequent
        )
        cluster = build_cluster(signal, drug_adr_database)
        assert exclusiveness(cluster) > 0.4

    def test_manual_two_drug_computation(self, drug_adr_database):
        """For a 2-drug rule Eq 3.5 reduces to one level: (p − v̄₁)·1·(1−θ·Cv)."""
        cluster = self._cluster(drug_adr_database)
        config = ExclusivenessConfig(theta=0.5)
        p = cluster.target.metrics.confidence
        values = cluster.context_values("confidence")[1]
        expected = (p - sum(values) / len(values)) * (
            1 - 0.5 * coefficient_of_variation(values)
        )
        assert exclusiveness(cluster, config) == pytest.approx(expected)

    def test_lift_measure_supported(self, drug_adr_database):
        cluster = self._cluster(drug_adr_database)
        score = exclusiveness(cluster, ExclusivenessConfig(measure="lift"))
        assert isinstance(score, float)

    def test_decay_changes_multi_level_scores(self, mined_quarter):
        cluster = next(c for c in mined_quarter.clusters if c.n_drugs >= 3)
        linear = exclusiveness(cluster, ExclusivenessConfig(decay="linear"))
        flat = exclusiveness(cluster, ExclusivenessConfig(decay="none"))
        assert linear != flat

    def test_theta_zero_weakens_no_uniform_context(self, drug_adr_database):
        cluster = self._cluster(drug_adr_database)
        relaxed = exclusiveness(cluster, ExclusivenessConfig(theta=0.0))
        strict = exclusiveness(cluster, ExclusivenessConfig(theta=1.0))
        # With any context spread, θ=1 penalizes at least as much as θ=0.
        assert strict <= relaxed + 1e-12

    def test_score_clusters_descending(self, mined_quarter):
        scored = score_clusters(mined_quarter.clusters[:20])
        values = [score for _, score in scored]
        assert values == sorted(values, reverse=True)
