"""Tests for Bayardo's improvement baseline (Eq. 3.2)."""

from __future__ import annotations

import pytest

from repro.core.context import build_cluster
from repro.core.improvement import improvement
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules


def cluster_for(database, predicate):
    rules = partitioned_rules(fpclose(database, 2), database)
    rule = next(r for r in rules if predicate(r))
    return build_cluster(rule, database)


class TestImprovement:
    def test_equals_p_minus_max_context(self, drug_adr_database):
        cluster = cluster_for(drug_adr_database, lambda r: len(r.antecedent) == 2)
        values = [
            v
            for level in cluster.context_values("confidence").values()
            for v in level
        ]
        expected = cluster.target.metrics.confidence - max(values)
        assert improvement(cluster) == pytest.approx(expected)

    def test_positive_for_exclusive_signal(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        cluster = cluster_for(
            drug_adr_database,
            lambda r: r.antecedent == catalog.encode(["D1", "D2"])
            and catalog.encode(["X"]) <= r.consequent,
        )
        assert improvement(cluster) > 0

    def test_dominated_rule_is_nonpositive(self):
        """A combination whose ADR is fully explained by one member drug."""
        from repro.mining.transactions import TransactionDatabase

        kinds = {"D1": "drug", "D2": "drug", "X": "adr", "Y": "adr"}
        db = TransactionDatabase.from_labelled(
            [
                ["D1", "X"],
                ["D1", "X"],
                ["D1", "X"],
                ["D1", "D2", "X"],
                ["D1", "D2", "X", "Y"],
                ["D2", "Y"],
            ],
            kinds=kinds,
        )
        cluster = cluster_for(
            db,
            lambda r: len(r.antecedent) == 2
            and db.catalog.encode(["X"]) == r.consequent,
        )
        # conf(D1,D2 → X) = 1.0 but conf(D1 → X) = 1.0 as well → improvement 0.
        assert improvement(cluster) <= 0

    def test_improvement_vs_exclusiveness_sensitivity(self, mined_quarter):
        """Improvement collapses contexts that exclusiveness distinguishes.

        Find two clusters with (nearly) identical improvement but
        different mean context strengths — the paper's §3.6 motivation.
        """
        from repro.core.exclusiveness import exclusiveness

        clusters = [c for c in mined_quarter.clusters if c.n_drugs == 2]
        by_improvement: dict[float, list] = {}
        for cluster in clusters:
            by_improvement.setdefault(round(improvement(cluster), 2), []).append(
                cluster
            )
        groups = [group for group in by_improvement.values() if len(group) >= 2]
        assert groups, "quarter should contain improvement ties"
        found_distinct = any(
            abs(exclusiveness(a) - exclusiveness(b)) > 1e-6
            for group in groups
            for a, b in [(group[0], group[1])]
        )
        assert found_distinct
