"""Tests for ranking strategies and the Table 5.2 structure."""

from __future__ import annotations

import pytest

from repro.core.exclusiveness import ExclusivenessConfig, exclusiveness
from repro.core.ranking import (
    RankingMethod,
    rank_clusters,
    ranking_table,
    score_cluster,
)
from repro.errors import ConfigError


class TestScoreCluster:
    def test_confidence_method(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        assert score_cluster(cluster, RankingMethod.CONFIDENCE) == (
            cluster.target.metrics.confidence
        )

    def test_lift_method(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        assert score_cluster(cluster, RankingMethod.LIFT) == (
            cluster.target.metrics.lift
        )

    def test_exclusiveness_methods_match_direct_call(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        assert score_cluster(
            cluster, RankingMethod.EXCLUSIVENESS_CONFIDENCE, theta=0.5
        ) == pytest.approx(
            exclusiveness(cluster, ExclusivenessConfig(measure="confidence", theta=0.5))
        )
        assert score_cluster(
            cluster, RankingMethod.EXCLUSIVENESS_LIFT, theta=0.5
        ) == pytest.approx(
            exclusiveness(cluster, ExclusivenessConfig(measure="lift", theta=0.5))
        )


class TestRankClusters:
    def test_descending_scores_and_contiguous_ranks(self, mined_quarter):
        ranked = rank_clusters(
            mined_quarter.clusters, RankingMethod.EXCLUSIVENESS_CONFIDENCE
        )
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)
        assert [entry.rank for entry in ranked] == list(range(1, len(ranked) + 1))

    def test_top_k_truncates(self, mined_quarter):
        ranked = rank_clusters(
            mined_quarter.clusters, RankingMethod.CONFIDENCE, top_k=5
        )
        assert len(ranked) == 5

    def test_invalid_top_k(self, mined_quarter):
        with pytest.raises(ConfigError):
            rank_clusters(mined_quarter.clusters, RankingMethod.CONFIDENCE, top_k=0)

    def test_deterministic_tie_break(self, mined_quarter):
        first = rank_clusters(mined_quarter.clusters, RankingMethod.CONFIDENCE)
        second = rank_clusters(mined_quarter.clusters, RankingMethod.CONFIDENCE)
        assert [e.cluster.target.items for e in first] == [
            e.cluster.target.items for e in second
        ]

    def test_methods_produce_different_orders(self, mined_quarter):
        by_conf = rank_clusters(mined_quarter.clusters, RankingMethod.CONFIDENCE, top_k=10)
        by_excl = rank_clusters(
            mined_quarter.clusters, RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=10
        )
        assert [e.cluster.target.items for e in by_conf] != [
            e.cluster.target.items for e in by_excl
        ]

    def test_describe(self, mined_quarter):
        entry = rank_clusters(
            mined_quarter.clusters, RankingMethod.CONFIDENCE, top_k=1
        )[0]
        text = entry.describe(mined_quarter.catalog)
        assert text.startswith("#1")
        assert "=>" in text


class TestRankingTable:
    def test_default_columns_are_the_papers_four(self, mined_quarter):
        table = mined_quarter.ranking_table(top_k=5)
        assert list(table) == [
            RankingMethod.CONFIDENCE,
            RankingMethod.LIFT,
            RankingMethod.EXCLUSIVENESS_CONFIDENCE,
            RankingMethod.EXCLUSIVENESS_LIFT,
        ]
        assert all(len(entries) == 5 for entries in table.values())

    def test_exclusiveness_column_is_not_a_confidence_reshuffle(self, mined_quarter):
        """Table 5.2's observation: the exclusiveness column surfaces
        substantially different rules than raw confidence, not the same
        top-k reordered."""
        table = ranking_table(mined_quarter.clusters, top_k=10)

        def itemsets(entries):
            return {entry.cluster.target.items for entry in entries}

        excl = itemsets(table[RankingMethod.EXCLUSIVENESS_CONFIDENCE])
        conf = itemsets(table[RankingMethod.CONFIDENCE])
        assert len(excl & conf) < 8  # at most a minority carried over
