"""Tests for cross-quarter signal trends."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig
from repro.core.trends import (
    SignalTrend,
    TrendKind,
    _classify,
    build_trends,
    emerging_signals,
)
from repro.errors import ConfigError
from repro.faers.schema import CaseReport


class TestClassify:
    def test_transient(self):
        assert _classify([0.5, None, None, None], change_threshold=0.05) is (
            TrendKind.TRANSIENT
        )

    def test_emerging(self):
        assert _classify([None, None, 0.3, 0.4], change_threshold=0.05) is (
            TrendKind.EMERGING
        )

    def test_strengthening(self):
        assert _classify([0.2, 0.3, 0.35, 0.5], change_threshold=0.05) is (
            TrendKind.STRENGTHENING
        )

    def test_weakening_by_score(self):
        assert _classify([0.5, 0.4, 0.3, 0.2], change_threshold=0.05) is (
            TrendKind.WEAKENING
        )

    def test_weakening_by_disappearance(self):
        assert _classify([0.4, 0.41, None, None], change_threshold=0.05) is (
            TrendKind.WEAKENING
        )

    def test_stable(self):
        assert _classify([0.4, 0.42, 0.39, 0.41], change_threshold=0.05) is (
            TrendKind.STABLE
        )


def quarter_result(reports, quarter):
    stamped = [
        CaseReport.build(
            f"{quarter}-{i}", r.drugs, r.adrs, quarter=quarter
        )
        for i, r in enumerate(reports)
    ]
    return Maras(MarasConfig(min_support=3, clean=False)).run(stamped)


def signal_reports(n, drugs=("SIGA", "SIGB"), adr="SIGADR"):
    return [CaseReport.build(f"s{i}", drugs, [adr]) for i in range(n)]


def background_reports(n):
    return [
        CaseReport.build(f"b{i}", [f"BG{i % 6}", f"BG{(i + 1) % 6}"], [f"BA{i % 4}"])
        for i in range(n)
    ]


class TestBuildTrends:
    @pytest.fixture
    def results(self):
        base = background_reports(60)
        return {
            "2014Q1": quarter_result(base, "2014Q1"),
            "2014Q2": quarter_result(base, "2014Q2"),
            "2014Q3": quarter_result(base + signal_reports(4), "2014Q3"),
            "2014Q4": quarter_result(base + signal_reports(8), "2014Q4"),
        }

    def test_trajectories_cover_all_quarters(self, results):
        trends = build_trends(results)
        assert trends
        for trend in trends:
            assert trend.quarters == ("2014Q1", "2014Q2", "2014Q3", "2014Q4")
            assert len(trend.scores) == len(trend.supports) == 4

    def test_planted_emergence_detected(self, results):
        trends = build_trends(results)
        by_key = {trend.key: trend for trend in trends}
        signal = by_key[(("SIGA", "SIGB"), ("SIGADR",))]
        assert signal.kind is TrendKind.EMERGING
        assert signal.scores[0] is None and signal.scores[3] is not None
        assert signal.supports[3] == 8

    def test_background_clusters_are_stable(self, results):
        trends = build_trends(results)
        stable = [t for t in trends if t.kind is TrendKind.STABLE]
        assert stable
        for trend in stable:
            assert trend.quarters_present == 4

    def test_emerging_watchlist(self, results):
        watchlist = emerging_signals(results)
        assert watchlist
        assert watchlist[0].key == (("SIGA", "SIGB"), ("SIGADR",))
        scores = [trend.scores[-1] for trend in watchlist]
        assert scores == sorted(scores, reverse=True)

    def test_min_final_score_filters(self, results):
        everything = emerging_signals(results, min_final_score=0.0)
        strict = emerging_signals(results, min_final_score=10.0)
        assert len(strict) <= len(everything)

    def test_describe(self, results):
        trend = build_trends(results)[0]
        text = trend.describe()
        assert "=>" in text and trend.kind.value in text

    def test_empty_results_rejected(self):
        with pytest.raises(ConfigError):
            build_trends({})

    def test_negative_threshold_rejected(self, results):
        with pytest.raises(ConfigError):
            build_trends(results, change_threshold=-0.1)
