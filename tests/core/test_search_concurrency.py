"""Concurrent-reader safety of :meth:`MarasResult.search`.

The serving layer calls ``search`` from many HTTP threads at once; the
resolver structures must be built exactly once and produce the same
answers under contention as sequentially.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.faers.dataset import ADR_KIND, DRUG_KIND


class TestResolverCaching:
    def test_resolvers_built_once_and_reused(self, mined_quarter):
        mined_quarter._resolvers.clear()
        mined_quarter.search(drug="ASPIRIN")
        built = mined_quarter._resolvers.get(DRUG_KIND)
        assert built is not None
        mined_quarter.search(drug="WARFARIN")
        assert mined_quarter._resolvers[DRUG_KIND] is built

    def test_both_kinds_cached_independently(self, mined_quarter):
        mined_quarter._resolvers.clear()
        mined_quarter.search(drug="ASPIRIN", adr="HAEMORRHAGE")
        assert set(mined_quarter._resolvers) == {DRUG_KIND, ADR_KIND}

    def test_resolution_still_normalizes_and_corrects(self, mined_quarter):
        # identical results to the canonical query for dosage tails and
        # unambiguous one-edit typos (behavior of the pre-refactor code)
        canonical = mined_quarter.search(drug="ASPIRIN")
        assert mined_quarter.search(drug="aspirin 81 mg") == canonical
        assert mined_quarter.search(drug="ASPIRN") == canonical


class TestConcurrentSearch:
    def test_hammered_search_matches_sequential(self, mined_quarter):
        catalog = mined_quarter.catalog
        drugs = sorted(
            {
                catalog.label(item)
                for cluster in mined_quarter.clusters[:20]
                for item in cluster.target.antecedent
            }
        )
        adrs = sorted(
            {
                catalog.label(item)
                for cluster in mined_quarter.clusters[:20]
                for item in cluster.target.consequent
            }
        )
        queries = [{"drug": d} for d in drugs] + [{"adr": a} for a in adrs]
        expected = [mined_quarter.search(**q) for q in queries]

        mined_quarter._resolvers.clear()  # force concurrent first build

        def run(index: int):
            query = queries[index % len(queries)]
            return index % len(queries), mined_quarter.search(**query)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(run, range(200)))

        for query_index, clusters in results:
            assert clusters == expected[query_index]
