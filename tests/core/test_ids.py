"""Stable content-hash ids for associations and clusters."""

from __future__ import annotations

from repro.core.export import export_result, load_export
from repro.core.ids import association_id, cluster_id, content_digest


class TestContentDigest:
    def test_deterministic_and_order_insensitive(self):
        first = content_digest(["WARFARIN", "ASPIRIN"], ["HAEMORRHAGE"])
        second = content_digest(["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"])
        assert first == second
        assert len(first) == 12
        assert int(first, 16) >= 0  # hex

    def test_sides_are_not_interchangeable(self):
        assert content_digest(["A"], ["B"]) != content_digest(["B"], ["A"])

    def test_label_boundaries_cannot_be_forged(self):
        # ["AB"] vs ["A", "B"] must differ even though the concatenation
        # of labels is identical.
        assert content_digest(["AB"], ["X"]) != content_digest(["A", "B"], ["X"])

    def test_different_content_different_digest(self):
        base = content_digest(["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"])
        assert content_digest(["ASPIRIN", "WARFARIN"], ["PAIN"]) != base
        assert content_digest(["ASPIRIN"], ["HAEMORRHAGE"]) != base


class TestIdNamespaces:
    def test_prefixes_keep_namespaces_distinct(self):
        drugs, adrs = ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]
        assoc = association_id(drugs, adrs)
        clus = cluster_id(drugs, adrs)
        assert assoc.startswith("assoc-")
        assert clus.startswith("mcac-")
        assert assoc != clus
        assert assoc.split("-", 1)[1] == clus.split("-", 1)[1]


class TestObjectIds:
    def test_cluster_stable_id_matches_function(self, mined_quarter):
        catalog = mined_quarter.catalog
        for cluster in mined_quarter.clusters[:10]:
            expected = cluster_id(
                catalog.labels(cluster.target.antecedent),
                catalog.labels(cluster.target.consequent),
            )
            assert cluster.stable_id(catalog) == expected

    def test_association_stable_id(self, mined_quarter):
        catalog = mined_quarter.catalog
        association = mined_quarter.associations[0]
        stable = association.stable_id(catalog)
        assert stable.startswith("assoc-")
        # same rule content as its cluster → same digest
        matching = [
            c
            for c in mined_quarter.clusters
            if c.target.items == association.rule.items
        ]
        assert any(
            c.stable_id(catalog).split("-", 1)[1] == stable.split("-", 1)[1]
            for c in matching
        )

    def test_ids_are_unique_across_a_run(self, mined_quarter):
        catalog = mined_quarter.catalog
        ids = [c.stable_id(catalog) for c in mined_quarter.clusters]
        assert len(ids) == len(set(ids))


class TestExportCarriesIds:
    def test_export_records_have_ids(self, mined_quarter):
        payload = export_result(mined_quarter)
        catalog = mined_quarter.catalog
        expected = {c.stable_id(catalog) for c in mined_quarter.clusters}
        assert {record["id"] for record in payload["clusters"]} == expected

    def test_load_export_reads_ids_back(self, mined_quarter):
        payload = export_result(mined_quarter)
        loaded = load_export(payload)
        assert {c.id for c in loaded.clusters} == {
            r["id"] for r in payload["clusters"]
        }

    def test_load_export_computes_missing_ids(self, mined_quarter):
        payload = export_result(mined_quarter)
        stripped = {
            **payload,
            "clusters": [
                {k: v for k, v in record.items() if k != "id"}
                for record in payload["clusters"]
            ],
        }
        loaded = load_export(stripped)
        assert {c.id for c in loaded.clusters} == {
            r["id"] for r in payload["clusters"]
        }
