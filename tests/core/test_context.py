"""Tests for contextual rules and MCAC construction (§3.5, Table 3.1)."""

from __future__ import annotations

import pytest

from repro.core.context import build_cluster, build_clusters
from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import CaseReport
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules


def target_rule(database, n_drugs=2):
    rules = partitioned_rules(fpclose(database, 2), database)
    for rule in rules:
        if len(rule.antecedent) == n_drugs:
            return rule
    raise AssertionError(f"no {n_drugs}-drug rule mined")


class TestBuildCluster:
    def test_context_is_complete_power_set(self, drug_adr_database):
        rule = target_rule(drug_adr_database, n_drugs=2)
        cluster = build_cluster(rule, drug_adr_database)
        # 2 drugs → levels {1}, with C(2,1)=2 rules → 2^2−2 = 2 total.
        assert cluster.context_size == 2
        assert set(cluster.levels) == {1}

    def test_contextual_antecedents_are_proper_subsets(self, drug_adr_database):
        rule = target_rule(drug_adr_database)
        cluster = build_cluster(rule, drug_adr_database)
        for contextual in cluster.all_context_rules():
            assert contextual.antecedent < rule.antecedent
            assert contextual.consequent == rule.consequent

    def test_levels_sorted_by_confidence(self, drug_adr_database):
        rule = target_rule(drug_adr_database)
        cluster = build_cluster(rule, drug_adr_database)
        for rules in cluster.levels.values():
            confidences = [r.metrics.confidence for r in rules]
            assert confidences == sorted(confidences, reverse=True)

    def test_single_drug_target_rejected(self, drug_adr_database):
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        singles = [r for r in rules if len(r.antecedent) == 1]
        assert singles, "fixture should mine single-drug rules"
        with pytest.raises(ConfigError, match="multi-drug"):
            build_cluster(singles[0], drug_adr_database)

    def test_build_clusters_skips_singles(self, drug_adr_database):
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        clusters = build_clusters(rules, drug_adr_database)
        assert all(c.n_drugs >= 2 for c in clusters)
        assert len(clusters) == sum(1 for r in rules if len(r.antecedent) >= 2)

    def test_context_values_by_measure(self, drug_adr_database):
        cluster = build_cluster(target_rule(drug_adr_database), drug_adr_database)
        conf = cluster.context_values("confidence")
        lift = cluster.context_values("lift")
        assert set(conf) == set(lift) == set(cluster.levels)
        assert all(0 <= v <= 1 for values in conf.values() for v in values)


class TestTable31Example:
    """Reproduce Table 3.1: the Xolair/Singulair/Prednisone asthma MCAC."""

    @pytest.fixture
    def asthma_database(self):
        drugs = ("XOLAIR", "SINGULAIR", "PREDNISONE")
        reports = []
        counter = 0

        def add(drug_list, adr_list, times):
            nonlocal counter
            for _ in range(times):
                counter += 1
                reports.append(CaseReport.build(f"c{counter}", drug_list, adr_list))

        add(drugs, ["ASTHMA"], 6)
        add(drugs[:2], ["ASTHMA"], 3)
        add(drugs[:2], ["PAIN"], 2)
        add((drugs[0], drugs[2]), ["ASTHMA"], 2)
        add((drugs[1], drugs[2]), ["ASTHMA"], 2)
        for drug in drugs:
            add([drug], ["ASTHMA"], 4)
            add([drug], ["PAIN"], 3)
        return ReportDataset(reports).encode()

    def test_cluster_has_the_table_structure(self, asthma_database):
        database = asthma_database.database
        catalog = asthma_database.catalog
        rules = partitioned_rules(fpclose(database, 2), database)
        targets = [
            r
            for r in rules
            if catalog.labels(r.antecedent)
            == ("PREDNISONE", "SINGULAIR", "XOLAIR")
            and catalog.labels(r.consequent) == ("ASTHMA",)
        ]
        assert targets, "the 3-drug asthma rule must be mined"
        cluster = build_cluster(targets[0], database)
        # Table 3.1: levels R~2 (three 2-drug rules) and R~1 (three 1-drug rules).
        assert set(cluster.levels) == {1, 2}
        assert len(cluster.levels[1]) == 3
        assert len(cluster.levels[2]) == 3
        assert cluster.context_size == 6  # 2^3 − 2

    def test_describe_renders_target_and_levels(self, asthma_database):
        database = asthma_database.database
        catalog = asthma_database.catalog
        rules = partitioned_rules(fpclose(database, 2), database)
        target = next(r for r in rules if len(r.antecedent) == 3)
        text = build_cluster(target, database).describe(catalog)
        assert text.splitlines()[0].startswith("R ")
        assert "R~2" in text and "R~1" in text
        assert "ASTHMA" in text
