"""Tests for the §3.3 support taxonomy and drug-ADR associations."""

from __future__ import annotations

import pytest

from repro.core.association import (
    DrugADRAssociation,
    SupportType,
    classify_support,
    is_pairwise_implicit,
)
from repro.errors import ConfigError
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules
from repro.mining.transactions import TransactionDatabase


class TestClassifySupport:
    def test_explicit_when_a_report_equals_the_itemset(self, toy_database):
        catalog = toy_database.catalog
        assert (
            classify_support(toy_database, catalog.encode(["a", "b", "c"]))
            is SupportType.EXPLICIT
        )

    def test_implicit_via_intersection_of_reports(self):
        db = TransactionDatabase.from_labelled(
            [["a", "b", "c"], ["a", "b", "d"]]
        )
        catalog = db.catalog
        assert (
            classify_support(db, catalog.encode(["a", "b"]))
            is SupportType.IMPLICIT
        )

    def test_partial_reading_is_unsupported(self):
        # {a, c} only appears inside one report: a spurious partial rule.
        db = TransactionDatabase.from_labelled([["a", "b", "c"], ["a", "b"]])
        catalog = db.catalog
        assert (
            classify_support(db, catalog.encode(["a", "c"]))
            is SupportType.UNSUPPORTED
        )

    def test_zero_support_is_unsupported(self, toy_database):
        catalog = toy_database.catalog
        assert (
            classify_support(toy_database, catalog.encode(["a", "f"]))
            is SupportType.UNSUPPORTED
        )

    def test_singleton_support_without_exact_match_is_unsupported(self):
        db = TransactionDatabase.from_labelled([["a", "b"], ["c"]])
        catalog = db.catalog
        assert classify_support(db, catalog.encode(["a"])) is SupportType.UNSUPPORTED

    def test_explicit_wins_over_implicit(self):
        db = TransactionDatabase.from_labelled(
            [["a", "b"], ["a", "b", "c"], ["a", "b", "d"]]
        )
        catalog = db.catalog
        assert classify_support(db, catalog.encode(["a", "b"])) is SupportType.EXPLICIT

    def test_empty_itemset_rejected(self, toy_database):
        with pytest.raises(ConfigError):
            classify_support(toy_database, frozenset())

    def test_is_supported_property(self):
        assert SupportType.EXPLICIT.is_supported
        assert SupportType.IMPLICIT.is_supported
        assert not SupportType.UNSUPPORTED.is_supported


class TestLemma342:
    """Closed itemsets are always supported (generalized implicit)."""

    @pytest.mark.parametrize(
        "transactions",
        [
            [["a", "b", "c"], ["a", "b", "d"], ["a", "c", "d"]],
            [["a", "b"], ["a", "b"], ["b", "c"], ["a"]],
            [["x", "y", "z"], ["x", "y"], ["x", "z"], ["y", "z"]],
        ],
    )
    def test_every_closed_itemset_is_supported(self, transactions):
        db = TransactionDatabase.from_labelled(transactions)
        for fi in fpclose(db, 1):
            assert classify_support(db, fi.items).is_supported

    def test_pairwise_variant_has_counterexamples(self):
        """The paper's literal pairwise Def. 3.3.2 is strictly weaker.

        With reports {a,b,c}, {a,b,d}, {a,c,d}: {a} is closed (hence
        supported in the generalized sense) but no *pair* of reports
        intersects to exactly {a}.
        """
        db = TransactionDatabase.from_labelled(
            [["a", "b", "c"], ["a", "b", "d"], ["a", "c", "d"]]
        )
        item_a = db.catalog.encode(["a"])
        assert classify_support(db, item_a) is SupportType.IMPLICIT
        assert not is_pairwise_implicit(db, item_a)

    def test_pairwise_implicit_positive_case(self):
        db = TransactionDatabase.from_labelled([["a", "b", "c"], ["a", "b", "d"]])
        assert is_pairwise_implicit(db, db.catalog.encode(["a", "b"]))

    def test_pairwise_budget_guard(self):
        db = TransactionDatabase.from_labelled([["a"]] * 100)
        with pytest.raises(ConfigError, match="max_pairs"):
            is_pairwise_implicit(db, db.catalog.encode(["a"]), max_pairs=10)


class TestDrugADRAssociation:
    def test_from_rule_classifies(self, drug_adr_database):
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        associations = [
            DrugADRAssociation.from_rule(rule, drug_adr_database) for rule in rules
        ]
        assert associations
        assert all(a.support_type.is_supported for a in associations)

    def test_multi_drug_flag(self, drug_adr_database):
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        by_n_drugs = {len(rule.antecedent): rule for rule in rules}
        if 1 in by_n_drugs:
            single = DrugADRAssociation.from_rule(by_n_drugs[1], drug_adr_database)
            assert not single.is_multi_drug
        double = DrugADRAssociation.from_rule(by_n_drugs[2], drug_adr_database)
        assert double.is_multi_drug

    def test_describe_mentions_support_type(self, drug_adr_database):
        rules = partitioned_rules(fpclose(drug_adr_database, 2), drug_adr_database)
        association = DrugADRAssociation.from_rule(rules[0], drug_adr_database)
        text = association.describe(drug_adr_database.catalog)
        assert association.support_type.value in text
