"""Unit tests of the incremental building blocks.

Each layer's in-place maintenance is checked against its from-scratch
counterpart: the growable database against a fresh encode, the
incremental cleaner against ``ReportCleaner``, the delta-restricted
miner against a filtered full mine, and the encoder's rebuild triggers
against hand-built deltas that violate each in-place invariant.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pipeline import MarasConfig
from repro.errors import ConfigError, MiningError
from repro.faers.cleaning import ReportCleaner
from repro.faers.schema import CaseReport
from repro.incremental import (
    CleaningDelta,
    IncrementalCleaner,
    IncrementalEncoder,
    carry_closed_itemsets,
)
from repro.mining.bitsets import BitsetIndex, SupportOracle
from repro.mining.fpclose import fpclose
from repro.mining.transactions import (
    GrowableTransactionDatabase,
    ItemCatalog,
    TransactionDatabase,
    canonical_itemset_order,
)

from tests.incremental.streams import make_stream, split_schedule


def random_rows(rng, n_rows, n_items=9):
    return [
        set(rng.sample(range(n_items), rng.randint(1, 5))) for _ in range(n_rows)
    ]


def catalog_of(n_items=9):
    catalog = ItemCatalog()
    for k in range(n_items):
        catalog.add(f"i{k}", "drug" if k % 2 else "adr")
    return catalog


class TestGrowableDatabase:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_mutations_equal_fresh_encode(self, seed):
        rng = random.Random(seed)
        catalog = catalog_of()
        rows = random_rows(rng, 12)
        growable = GrowableTransactionDatabase([set(r) for r in rows[:6]], catalog)
        for row in rows[6:]:
            growable.append_row(set(row))
        # Rewrite three rows: grow one, shrink one, replace one.
        targets = rng.sample(range(len(rows)), 3)
        rows[targets[0]] = rows[targets[0]] | {rng.randrange(9)}
        shrunken = sorted(rows[targets[1]])[:-1] or [rng.randrange(9)]
        rows[targets[1]] = set(shrunken)
        rows[targets[2]] = set(rng.sample(range(9), 3))
        for tid in targets:
            growable.update_row(tid, set(rows[tid]))

        fresh = TransactionDatabase([set(r) for r in rows], catalog)
        assert list(growable) == list(fresh)
        assert growable.item_masks() == fresh.item_masks()
        for item in range(9):
            assert growable.tidset_of(frozenset([item])) == fresh.tidset_of(
                frozenset([item])
            )

    def test_update_row_reports_added_and_removed(self):
        growable = GrowableTransactionDatabase([{0, 1, 2}], catalog_of())
        added, removed = growable.update_row(0, {1, 2, 3})
        assert added == frozenset({3})
        assert removed == frozenset({0})
        # The removed item's bit is gone from its mask.
        assert 0 not in growable.item_masks()
        assert growable.tidset_of(frozenset([0])) == frozenset()

    def test_append_rejects_unknown_items(self):
        growable = GrowableTransactionDatabase([{0}], catalog_of(3))
        with pytest.raises(MiningError):
            growable.append_row({99})


class TestDeltaRestrictedMining:
    @pytest.mark.parametrize("seed", [5, 6, 7, 8, 9])
    def test_touched_mask_selects_exactly_intersecting_itemsets(self, seed):
        rng = random.Random(seed)
        database = TransactionDatabase(random_rows(rng, 14), catalog_of())
        masks = database.item_masks()
        full = fpclose(database, 2)
        touched_mask = 0
        for tid in rng.sample(range(14), 4):
            touched_mask |= 1 << tid

        def mask_of(items):
            mask = -1
            for item in items:
                mask &= masks.get(item, 0)
            return mask

        expected = {
            (fi.items, fi.support)
            for fi in full
            if mask_of(fi.items) & touched_mask
        }
        restricted = fpclose(database, 2, touched_mask=touched_mask)
        assert {(fi.items, fi.support) for fi in restricted} == expected

    def test_zero_mask_mines_nothing(self):
        database = TransactionDatabase([{0, 1}, {0, 2}], catalog_of())
        assert fpclose(database, 1, touched_mask=0) == []

    def test_negative_mask_rejected(self):
        database = TransactionDatabase([{0, 1}], catalog_of())
        with pytest.raises(ConfigError):
            fpclose(database, 1, touched_mask=-1)

    @pytest.mark.parametrize("seed", [10, 11, 12, 13])
    def test_carry_plus_restricted_partition_the_closed_family(self, seed):
        """carried ∪ re-mined == full mine, disjointly (grow-only delta)."""
        rng = random.Random(seed)
        catalog = catalog_of()
        rows = random_rows(rng, 16)
        old = TransactionDatabase([set(r) for r in rows[:12]], catalog)
        prev_closed = fpclose(old, 2)

        growable = GrowableTransactionDatabase(
            [set(r) for r in rows[:12]], catalog
        )
        touched = []
        touched_mask = 0
        grown_tid = rng.randrange(12)
        grown = rows[grown_tid] | {rng.randrange(9)}
        if grown != rows[grown_tid]:
            growable.update_row(grown_tid, set(grown))
            rows[grown_tid] = grown
            touched.append(grown_tid)
            touched_mask |= 1 << grown_tid
        for row in rows[12:]:
            tid = growable.append_row(set(row))
            touched.append(tid)
            touched_mask |= 1 << tid

        carried, _ = carry_closed_itemsets(prev_closed, growable, touched, 2)
        mined = fpclose(growable, 2, touched_mask=touched_mask)
        merged = canonical_itemset_order(carried + mined)
        full = canonical_itemset_order(
            fpclose(TransactionDatabase([set(r) for r in rows], catalog), 2)
        )
        assert merged == full
        assert len({fi.items for fi in merged}) == len(merged)

    def test_carry_filters_by_risen_threshold(self):
        catalog = catalog_of(4)
        database = GrowableTransactionDatabase(
            [{0, 1}, {0, 1}, {2}, {2}, {2}], catalog
        )
        prev_closed = fpclose(database, 2)
        carried, _ = carry_closed_itemsets(prev_closed, database, [], 3)
        assert {fi.items for fi in carried} == {frozenset({2})}


class TestIncrementalCleaner:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    @pytest.mark.parametrize("n_batches", [1, 3, 5])
    def test_fold_equals_one_shot_cleaner(self, seed, n_batches):
        rows = make_stream(seed, n_cases=80)
        fractions = tuple((k + 1) / n_batches for k in range(n_batches))
        incremental = IncrementalCleaner()
        for batch in split_schedule(rows, fractions):
            incremental.ingest(batch)
        one_shot_rows, one_shot_stats = ReportCleaner().clean(rows)
        assert incremental.kept_reports() == one_shot_rows
        assert incremental.stats() == one_shot_stats

    def test_normalized_rows_rejected_with_vocabularies(self):
        cleaner = IncrementalCleaner(drug_vocabulary=["ASPIRIN"])
        row = CaseReport.build("c1", ["ASPIRIN"], ["NAUSEA"])
        with pytest.raises(ConfigError, match="vocabul"):
            cleaner.ingest([row], normalized=[(frozenset(), frozenset())])

    def test_signature_flip_requests_rebuild(self):
        cleaner = IncrementalCleaner()
        cleaner.ingest(
            [
                CaseReport.build("c1", ["ASPIRIN"], ["NAUSEA"]),
                CaseReport.build("c2", ["ASPIRIN"], ["RASH"]),
            ]
        )
        delta = cleaner.ingest(
            [CaseReport.build("c2", ["ASPIRIN"], ["NAUSEA"])]
        )
        # c2 now reads ASPIRIN → {NAUSEA, RASH}; signature moved but no
        # pre-batch keeper flipped, so no rebuild is needed...
        assert delta.needs_rebuild is False
        # ...whereas a follow-up that makes a *previously distinct* case
        # collide exactly does flip the duplicate drop.
        cleaner = IncrementalCleaner()
        cleaner.ingest(
            [
                CaseReport.build("a", ["ASPIRIN"], ["NAUSEA", "RASH"]),
                CaseReport.build("b", ["ASPIRIN"], ["NAUSEA"]),
            ]
        )
        delta = cleaner.ingest([CaseReport.build("b", ["ASPIRIN"], ["RASH"])])
        assert delta.needs_rebuild is True


class TestEncoderRebuildTriggers:
    @staticmethod
    def _seeded_encoder():
        encoder = IncrementalEncoder()
        encoder.rebuild(
            [
                CaseReport.build("c1", ["ASPIRIN"], ["NAUSEA"]),
                CaseReport.build("c2", ["WARFARIN"], ["HAEMORRHAGE"]),
            ]
        )
        return encoder

    def test_drug_label_colliding_with_encoded_adr(self):
        encoder = self._seeded_encoder()
        delta = CleaningDelta(
            appended=[CaseReport.build("c3", ["NAUSEA"], ["RASH"])]
        )
        assert "collides" in encoder.rebuild_reason(delta)

    def test_follow_up_adding_new_catalog_item(self):
        encoder = self._seeded_encoder()
        delta = CleaningDelta(
            updated=[
                CaseReport.build("c1", ["ASPIRIN", "IBUPROFEN"], ["NAUSEA"])
            ]
        )
        assert "new to the catalog" in encoder.rebuild_reason(delta)

    def test_follow_up_backfilling_later_item(self):
        encoder = self._seeded_encoder()
        # WARFARIN first appears in row 1; adding it to row 0 would
        # violate first-seen id order.
        delta = CleaningDelta(
            updated=[
                CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["NAUSEA"])
            ]
        )
        assert "first seen later" in encoder.rebuild_reason(delta)

    def test_follow_up_removing_items(self):
        encoder = self._seeded_encoder()
        encoder.rebuild(
            [
                CaseReport.build("c1", ["ASPIRIN", "WARFARIN"], ["NAUSEA"]),
                CaseReport.build("c2", ["WARFARIN"], ["HAEMORRHAGE"]),
            ]
        )
        delta = CleaningDelta(
            updated=[CaseReport.build("c1", ["ASPIRIN"], ["NAUSEA"])]
        )
        assert "removes items" in encoder.rebuild_reason(delta)

    def test_in_place_growth_needs_no_rebuild(self):
        encoder = self._seeded_encoder()
        delta = CleaningDelta(
            appended=[CaseReport.build("c3", ["ASPIRIN"], ["RASH"])],
            updated=[
                CaseReport.build(
                    "c2", ["WARFARIN"], ["HAEMORRHAGE", "NAUSEA"]
                )
            ],
        )
        assert encoder.rebuild_reason(delta) is None
        effect = encoder.apply(delta)
        assert effect.touched_mask == (1 << 1) | (1 << 2)
        assert effect.appended_tids == [2]
        assert effect.updated_tids == [1]


class TestSupportOracleWarmStart:
    def test_warm_from_carries_only_delta_disjoint_entries(self):
        catalog = catalog_of()
        database = GrowableTransactionDatabase(
            [{0, 1}, {0, 1, 2}, {2, 3}], catalog
        )
        previous = SupportOracle.for_database(database)
        for items in ({0}, {0, 1}, {2}, {2, 3}, {3}):
            previous.support(frozenset(items))

        database.append_row({2, 4})
        fresh = SupportOracle(BitsetIndex(database))
        carried = fresh.warm_from(previous, invalidated=frozenset({2, 4}))
        assert carried == 3  # {0}, {0,1}, {3}; the {2}-touching keys stay cold
        # Every answer — carried or recomputed — matches ground truth.
        for items in ({0}, {0, 1}, {2}, {2, 3}, {3}, {2, 4}):
            key = frozenset(items)
            expected = sum(1 for row in database if key <= row)
            assert fresh.support(key) == expected

    def test_warm_from_never_carries_the_empty_itemset(self):
        catalog = catalog_of(2)
        database = GrowableTransactionDatabase([{0}], catalog)
        previous = SupportOracle.for_database(database)
        previous.support(frozenset())  # caches support(∅) == 1
        database.append_row({1})
        fresh = SupportOracle(BitsetIndex(database))
        fresh.warm_from(previous, invalidated=frozenset({1}))
        assert fresh.support(frozenset()) == 2


class TestConfigValidation:
    def test_incremental_requires_bitsets(self):
        with pytest.raises(ConfigError, match="use_bitsets"):
            MarasConfig(incremental=True, use_bitsets=False)

    def test_incremental_rejects_rule_space_census(self):
        with pytest.raises(ConfigError, match="count_rule_space"):
            MarasConfig(incremental=True, count_rule_space=True)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_rebuild_fraction_bounds(self, fraction):
        with pytest.raises(ConfigError, match="rebuild_fraction"):
            MarasConfig(incremental_rebuild_fraction=fraction)
