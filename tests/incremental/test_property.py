"""Property test: incremental == one-shot for *arbitrary* batch splits.

Hypothesis generates small report streams — repeated case ids
(follow-up versions), colliding content (duplicate drops), shared
drug/ADR pools — and arbitrary cut points, and the engine must
reproduce the one-shot pipeline's full export byte for byte. This is
the adversarial complement to the seeded differential grid: splits can
land a follow-up before its first version's batch boundary, produce
empty batches, or cut every row into its own batch.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.incremental import SurveillanceMonitor
from repro.core.pipeline import Maras, MarasConfig

from tests.incremental.streams import export_bytes

from repro.faers.schema import CaseReport

DRUGS = ["ASPIRIN", "WARFARIN", "NEXIUM", "IBUPROFEN", "METFORMIN"]
ADRS = ["NAUSEA", "HAEMORRHAGE", "RASH", "DIZZINESS"]

report_strategy = st.builds(
    lambda case, drugs, adrs: CaseReport.build(
        f"c{case}", drugs, adrs, quarter="2014Q1"
    ),
    case=st.integers(min_value=0, max_value=7),  # few ids → many follow-ups
    drugs=st.sets(st.sampled_from(DRUGS), min_size=1, max_size=3),
    adrs=st.sets(st.sampled_from(ADRS), min_size=1, max_size=2),
)

stream_strategy = st.lists(report_strategy, min_size=1, max_size=16)


@st.composite
def stream_with_cuts(draw):
    stream = draw(stream_strategy)
    n_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(stream)),
                min_size=n_cuts,
                max_size=n_cuts,
            )
        )
    )
    return stream, cuts


def batches_from(stream, cuts):
    bounds = [0, *cuts, len(stream)]
    return [
        stream[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]


@given(data=stream_with_cuts())
@settings(max_examples=25, deadline=None)
def test_incremental_equals_one_shot_for_any_split(data):
    stream, cuts = data
    config = MarasConfig(min_support=1, clean=True, incremental=True)
    with SurveillanceMonitor(config) as monitor:
        for batch in batches_from(stream, cuts):
            if batch:
                monitor.ingest(batch)
        result = monitor.result
    reference = Maras(MarasConfig(min_support=1, clean=True)).run(list(stream))
    assert export_bytes(result) == export_bytes(reference)
