"""Differential harness: incremental surveillance ≡ from-scratch runs.

The incremental engine's contract is absolute — after *any* batch
schedule, the monitor's result must be **byte-identical** (full JSON
export) to one from-scratch pipeline run over the same history. The
grid: seeds × batch schedules (coarse / fine / skewed) × both clean
modes × worker counts, over streams that interleave follow-up versions
(bit invalidation), exact-content duplicates and empty rows.
"""

from __future__ import annotations

import pytest

from repro.core.incremental import SurveillanceMonitor
from repro.core.pipeline import Maras, MarasConfig
from repro.faers.dataset import ReportDataset

from tests.incremental.streams import (
    dedup_first_version,
    export_bytes,
    make_stream,
    split_schedule,
)

SEED_GRID = (11, 47, 2014)
SCHEDULES = {
    "coarse": (0.5, 1.0),
    "fine": (1 / 6, 2 / 6, 3 / 6, 4 / 6, 5 / 6, 1.0),
    "skewed": (0.6, 0.7, 0.8, 0.9, 1.0),
}
MIN_SUPPORT = 3


@pytest.fixture(scope="module", params=SEED_GRID)
def stream(request):
    return make_stream(request.param)


@pytest.fixture(scope="module")
def references(stream):
    """One from-scratch truth per clean mode (schedule-independent)."""
    truths = {}
    for clean in (True, False):
        config = MarasConfig(min_support=MIN_SUPPORT, clean=clean)
        if clean:
            truths[clean] = Maras(config).run(stream)
        else:
            truths[clean] = Maras(config).run(
                ReportDataset(dedup_first_version(stream))
            )
    return truths


def run_incremental(stream, schedule, *, clean, n_workers=1):
    config = MarasConfig(
        min_support=MIN_SUPPORT,
        clean=clean,
        incremental=True,
        n_workers=n_workers,
    )
    with SurveillanceMonitor(config) as monitor:
        for batch in split_schedule(stream, SCHEDULES[schedule]):
            if batch:
                monitor.ingest(batch)
        return monitor.result


class TestByteIdentity:
    @pytest.mark.parametrize("clean", [True, False])
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_every_schedule_matches_one_shot(
        self, stream, references, schedule, clean
    ):
        result = run_incremental(stream, schedule, clean=clean)
        assert export_bytes(result) == export_bytes(references[clean])

    @pytest.mark.parametrize("n_workers", [2, 4])
    @pytest.mark.parametrize("clean", [True, False])
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_workers_do_not_perturb_output(
        self, stream, references, schedule, clean, n_workers
    ):
        # Workers shard the (first-batch) rebuild mine, the batch
        # normalization, AND every delta re-mine (fpclose_sharded with
        # touched_mask); the export must not notice any of it.
        result = run_incremental(
            stream, schedule, clean=clean, n_workers=n_workers
        )
        assert export_bytes(result) == export_bytes(references[clean])

    def test_cleaning_stats_match_one_shot(self, stream, references):
        result = run_incremental(stream, "fine", clean=True)
        assert result.cleaning_stats == references[True].cleaning_stats

    def test_per_batch_results_match_prefix_runs(self, stream):
        """Not just the final state: every intermediate batch's result
        equals a from-scratch run over the stream prefix."""
        config = MarasConfig(min_support=MIN_SUPPORT, clean=True)
        batches = split_schedule(stream, SCHEDULES["skewed"])
        with SurveillanceMonitor(
            MarasConfig(min_support=MIN_SUPPORT, clean=True, incremental=True)
        ) as monitor:
            prefix = []
            for batch in batches:
                prefix.extend(batch)
                monitor.ingest(batch)
                reference = Maras(config).run(list(prefix))
                assert export_bytes(monitor.result) == export_bytes(reference)

    def test_change_feed_matches_full_rescan_monitor(self, stream):
        """The evaluator-facing BatchDelta feed is mode-independent."""
        batches = split_schedule(stream, SCHEDULES["fine"])
        base = MarasConfig(min_support=MIN_SUPPORT, clean=True)
        incremental = MarasConfig(
            min_support=MIN_SUPPORT, clean=True, incremental=True
        )
        with SurveillanceMonitor(base) as slow, SurveillanceMonitor(
            incremental
        ) as fast:
            for batch in batches:
                slow.ingest(batch)
                fast.ingest(batch)
            assert fast.history == slow.history
            assert fast.watchlist() == slow.watchlist()
