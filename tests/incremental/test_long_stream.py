"""Long-stream soak: 50 quarters through the monitor, prefix-exact.

The capacity testbed's surveillance leg: a multi-year synthetic schedule
(:func:`~repro.faers.synthetic.quarter_sequence`) streamed through
:meth:`SurveillanceMonitor.ingest_stream` batch by batch, never
materializing the full stream. The invariant is *prefix equality*: after
any batch, the streaming monitor's result must be byte-identical to a
from-scratch monitor fed the same prefix — the incremental engine's
accumulated state can never drift, no matter how long the stream runs.
Checked exhaustively against a batch-parallel rescan monitor, and at
spot checkpoints against a cold monitor rebuilt from the prefix.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import MarasConfig
from repro.core.incremental import SurveillanceMonitor
from repro.errors import ConfigError
from repro.faers.synthetic import quarter_sequence

from tests.incremental.streams import export_bytes

N_QUARTERS = 50
REPORTS_PER_QUARTER = 60
MIN_SUPPORT = 4
CHECKPOINTS = (0, 9, 24, 49)  # batch indices rebuilt from scratch


def stream_quarters():
    for _, generator in quarter_sequence(
        N_QUARTERS,
        reports_per_quarter=REPORTS_PER_QUARTER,
        n_drugs=50,
        n_adrs=20,
    ):
        yield from generator.iter_reports()


def config(**overrides) -> MarasConfig:
    return MarasConfig(min_support=MIN_SUPPORT, clean=True, **overrides)


@pytest.fixture(scope="module")
def long_stream_run():
    """Drive the full 50-quarter schedule once; tests share the trace."""
    fast = SurveillanceMonitor(config(incremental=True))
    slow = SurveillanceMonitor(config())
    batches: list[list] = []
    exports: list[bytes] = []
    deltas = []
    stream = stream_quarters()
    with fast, slow:
        while batch := list(itertools.islice(stream, REPORTS_PER_QUARTER)):
            batches.append(batch)
            delta = fast.ingest(batch)
            slow.ingest(batch)
            deltas.append(delta)
            # Exhaustive prefix equality against the rescan monitor.
            assert export_bytes(fast.result) == export_bytes(slow.result), (
                f"incremental result diverged from full rescan at batch "
                f"{len(batches) - 1}"
            )
            exports.append(export_bytes(fast.result))
    return batches, exports, deltas


def test_schedule_shape(long_stream_run):
    batches, exports, deltas = long_stream_run
    assert len(batches) == N_QUARTERS
    assert sum(len(b) for b in batches) == N_QUARTERS * REPORTS_PER_QUARTER
    assert [d.batch_index for d in deltas] == list(range(1, N_QUARTERS + 1))


@pytest.mark.parametrize("checkpoint", CHECKPOINTS)
def test_prefix_equality_from_scratch(long_stream_run, checkpoint):
    """A cold monitor over the prefix reproduces the streamed state."""
    batches, exports, _ = long_stream_run
    cold = SurveillanceMonitor(config(incremental=True))
    with cold:
        for batch in batches[: checkpoint + 1]:
            cold.ingest(batch)
        assert export_bytes(cold.result) == exports[checkpoint]


def test_ingest_stream_matches_manual_batching(long_stream_run):
    """ingest_stream is exactly ingest() over islice batches."""
    batches, exports, _ = long_stream_run
    monitor = SurveillanceMonitor(config(incremental=True))
    with monitor:
        deltas = list(
            monitor.ingest_stream(stream_quarters(), batch_size=REPORTS_PER_QUARTER)
        )
        assert export_bytes(monitor.result) == exports[-1]
    assert len(deltas) == N_QUARTERS
    assert deltas[-1].n_reports_total == sum(len(b) for b in batches)


def test_ingest_stream_consumes_lazily():
    """The stream is pulled one batch ahead at most, never drained."""
    pulled = 0

    def counting_stream():
        nonlocal pulled
        for report in stream_quarters():
            pulled += 1
            yield report

    monitor = SurveillanceMonitor(config(incremental=True))
    with monitor:
        feed = monitor.ingest_stream(counting_stream(), batch_size=REPORTS_PER_QUARTER)
        next(feed)
        assert pulled == REPORTS_PER_QUARTER
        next(feed)
        assert pulled == 2 * REPORTS_PER_QUARTER


def test_ingest_stream_rejects_bad_batch_size():
    monitor = SurveillanceMonitor(config())
    with monitor, pytest.raises(ConfigError):
        next(monitor.ingest_stream(stream_quarters(), batch_size=0))


def test_ranking_stabilizes_over_long_stream(long_stream_run):
    """The watchlist settles: churn shrinks relative to its size, ρ → 1.

    Absolute churn keeps climbing on this workload (every quarter sends
    new combinations over the support threshold as the base grows), so
    the honest stability claims are *relative*: the per-batch churn as a
    fraction of the watchlist falls an order of magnitude from the
    early stream to the late stream, and consecutive-batch Spearman
    correlation sits near 1 once the base is established.
    """
    _, _, deltas = long_stream_run
    watch_size = 0
    relative_churn = []
    for delta in deltas:
        watch_size += len(delta.newly_surfaced) - len(delta.dropped)
        churn = len(delta.newly_surfaced) + len(delta.dropped)
        relative_churn.append(churn / max(watch_size, 1))
    early = sum(relative_churn[5:15]) / 10
    late = sum(relative_churn[-10:]) / 10
    assert late < early / 2
    late_rhos = [d.rank_correlation for d in deltas[-10:]]
    assert all(rho is not None and rho >= 0.9 for rho in late_rhos)
