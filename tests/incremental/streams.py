"""Shared stream builders for the incremental differential harness."""

from __future__ import annotations

import json
import random

from repro.core.export import export_result
from repro.faers.schema import CaseReport


def make_stream(
    seed: int,
    n_cases: int = 150,
    n_drugs: int = 14,
    n_adrs: int = 10,
    follow_up_rate: float = 0.2,
) -> list[CaseReport]:
    """A raw surveillance stream with interleaved follow-up versions.

    Roughly ``follow_up_rate`` of the cases receive a later version that
    *adds* a drug and an ADR; follow-ups are inserted at random later
    stream positions, so any batch split can land one in a different
    batch than its first version. A few rows duplicate another case's
    exact content under a new case id (the cleaner drops those), and a
    few have an empty side after normalization.
    """
    rng = random.Random(seed)
    drugs = [f"DRUG{i}" for i in range(n_drugs)]
    adrs = [f"ADR{i}" for i in range(n_adrs)]
    rows: list[CaseReport] = []
    for i in range(n_cases):
        rows.append(
            CaseReport.build(
                f"C{i:04d}",
                set(rng.sample(drugs, rng.randint(1, 4))),
                set(rng.sample(adrs, rng.randint(1, 3))),
                quarter="2014Q1",
            )
        )
    for i in rng.sample(range(n_cases), int(n_cases * follow_up_rate)):
        base = rows[i]
        follow_up = CaseReport.build(
            base.case_id,
            set(base.drugs) | {rng.choice(drugs)},
            set(base.adrs) | {rng.choice(adrs)},
            quarter=base.quarter,
        )
        rows.insert(rng.randint(i + 1, len(rows)), follow_up)
    # Exact-content duplicates under fresh case ids → duplicate drop.
    for j, i in enumerate(rng.sample(range(n_cases), max(2, n_cases // 30))):
        base = rows[i]
        rows.insert(
            rng.randint(0, len(rows)),
            CaseReport.build(
                f"DUP{j:03d}", set(base.drugs), set(base.adrs), quarter=base.quarter
            ),
        )
    # Rows that normalize to an empty side → empty_reports_dropped.
    rows.insert(
        rng.randint(0, len(rows)),
        CaseReport.build("EMPTY01", {"100 MG"}, {rng.choice(adrs)}, quarter="2014Q1"),
    )
    return rows


def split_schedule(rows: list[CaseReport], fractions: tuple[float, ...]):
    """Cut a stream at cumulative fractions (last must be 1.0)."""
    batches = []
    start = 0
    for fraction in fractions:
        end = round(len(rows) * fraction)
        batches.append(rows[start:end])
        start = end
    return batches


def dedup_first_version(rows: list[CaseReport]) -> list[CaseReport]:
    """No-clean stream semantics: the first version of a case wins."""
    seen: set[str] = set()
    kept = []
    for row in rows:
        if row.case_id not in seen:
            seen.add(row.case_id)
            kept.append(row)
    return kept


def export_bytes(result) -> bytes:
    return json.dumps(
        export_result(result), sort_keys=True, separators=(",", ":")
    ).encode()
