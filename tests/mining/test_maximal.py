"""Tests for maximal frequent itemset mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.fpclose import fpclose
from repro.mining.fpgrowth import fpgrowth
from repro.mining.maximal import lattice_summary, maximal_itemsets
from repro.mining.transactions import ItemCatalog, TransactionDatabase

ITEMS = [f"i{k}" for k in range(7)]
transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=5),
    min_size=1,
    max_size=25,
)


class TestMaximal:
    def test_no_frequent_proper_superset(self, toy_database):
        frequent = {fi.items for fi in fpgrowth(toy_database, 2)}
        for maximal in maximal_itemsets(toy_database, 2):
            assert all(
                not (maximal.items < other) for other in frequent
            ), toy_database.catalog.labels(maximal.items)

    def test_known_maximal_sets(self, toy_database):
        catalog = toy_database.catalog
        maximal = {fi.items for fi in maximal_itemsets(toy_database, 2)}
        assert catalog.encode(["a", "b", "c"]) in maximal
        assert catalog.encode(["a", "b"]) not in maximal

    def test_every_frequent_itemset_has_a_maximal_cover(self, toy_database):
        maximal = [fi.items for fi in maximal_itemsets(toy_database, 2)]
        for fi in fpgrowth(toy_database, 2):
            assert any(fi.items <= cover for cover in maximal)

    def test_containment_chain_sizes(self, toy_database):
        summary = lattice_summary(toy_database, 1)
        assert summary["maximal"] <= summary["closed"] <= summary["frequent"]

    def test_empty_database(self):
        assert maximal_itemsets(TransactionDatabase([], ItemCatalog()), 1) == []

    def test_supports_exact(self, toy_database):
        for fi in maximal_itemsets(toy_database, 1):
            assert fi.support == toy_database.support(fi.items)


@settings(max_examples=50, deadline=None)
@given(transactions=transactions_strategy, threshold=st.integers(1, 4))
def test_maximal_properties_random(transactions, threshold):
    db = TransactionDatabase.from_labelled(transactions)
    frequent = {fi.items for fi in fpgrowth(db, threshold)}
    closed = {fi.items for fi in fpclose(db, threshold)}
    maximal = {fi.items for fi in maximal_itemsets(db, threshold)}
    # containment chain
    assert maximal <= closed <= frequent
    # maximality: no frequent proper superset
    for items in maximal:
        assert all(not (items < other) for other in frequent)
    # coverage: every frequent itemset under some maximal one
    for items in frequent:
        assert any(items <= cover for cover in maximal)
