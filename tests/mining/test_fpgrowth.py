"""Tests for FP-Growth frequent itemset mining."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import ItemCatalog, TransactionDatabase


def as_dict(itemsets):
    return {fi.items: fi.support for fi in itemsets}


class TestFPGrowthBasics:
    def test_toy_database_exact_results(self, toy_database):
        catalog = toy_database.catalog
        mined = as_dict(fpgrowth(toy_database, 2))
        assert mined[catalog.encode(["a"])] == 4
        assert mined[catalog.encode(["a", "b"])] == 3
        assert mined[catalog.encode(["a", "b", "c"])] == 2
        assert mined[catalog.encode(["e"])] == 2
        assert catalog.encode(["f"]) not in mined  # support 1 < 2

    def test_no_duplicate_itemsets(self, toy_database):
        mined = fpgrowth(toy_database, 1)
        itemsets = [fi.items for fi in mined]
        assert len(itemsets) == len(set(itemsets))

    def test_supports_match_database(self, toy_database):
        for fi in fpgrowth(toy_database, 1):
            assert fi.support == toy_database.support(fi.items)

    def test_empty_itemset_never_emitted(self, toy_database):
        assert all(fi.items for fi in fpgrowth(toy_database, 1))

    def test_threshold_monotonicity(self, toy_database):
        low = {fi.items for fi in fpgrowth(toy_database, 1)}
        high = {fi.items for fi in fpgrowth(toy_database, 3)}
        assert high <= low

    def test_fraction_threshold(self, toy_database):
        # 0.4 of 5 transactions → absolute 2
        by_fraction = as_dict(fpgrowth(toy_database, 0.4))
        by_absolute = as_dict(fpgrowth(toy_database, 2))
        assert by_fraction == by_absolute

    def test_empty_database(self):
        db = TransactionDatabase([], ItemCatalog())
        assert fpgrowth(db, 1) == []

    def test_all_items_infrequent(self, toy_database):
        assert fpgrowth(toy_database, 100) == []


class TestMaxLen:
    def test_max_len_caps_cardinality(self, toy_database):
        mined = fpgrowth(toy_database, 1, max_len=2)
        assert max(len(fi.items) for fi in mined) == 2

    def test_max_len_keeps_short_itemsets_intact(self, toy_database):
        unbounded = {
            fi.items: fi.support
            for fi in fpgrowth(toy_database, 1)
            if len(fi.items) <= 2
        }
        bounded = as_dict(fpgrowth(toy_database, 1, max_len=2))
        assert bounded == unbounded

    def test_max_len_one_is_item_supports(self, toy_database):
        mined = as_dict(fpgrowth(toy_database, 1, max_len=1))
        expected = {
            frozenset({item}): count
            for item, count in toy_database.item_supports().items()
        }
        assert mined == expected

    def test_invalid_max_len_rejected(self, toy_database):
        with pytest.raises(ConfigError):
            fpgrowth(toy_database, 1, max_len=0)


class TestSinglePathShortcut:
    def test_chain_database_enumerates_all_subsets(self):
        # Transactions nest, so the FP-tree is one chain.
        db = TransactionDatabase.from_labelled(
            [["a", "b", "c"], ["a", "b"], ["a"]]
        )
        mined = as_dict(fpgrowth(db, 1))
        catalog = db.catalog
        assert len(mined) == 7  # 2^3 - 1 subsets
        assert mined[catalog.encode(["a"])] == 3
        assert mined[catalog.encode(["b", "c"])] == 1
        assert mined[catalog.encode(["a", "b", "c"])] == 1

    def test_chain_with_max_len(self):
        db = TransactionDatabase.from_labelled(
            [["a", "b", "c", "d"], ["a", "b", "c", "d"]]
        )
        mined = fpgrowth(db, 1, max_len=2)
        assert all(len(fi.items) <= 2 for fi in mined)
        # 4 singletons + 6 pairs
        assert len(mined) == 10
