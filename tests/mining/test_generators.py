"""Tests for minimal generators and non-redundant rules."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mining.closure import closure
from repro.mining.fpclose import fpclose
from repro.mining.fpgrowth import fpgrowth
from repro.mining.generators import (
    minimal_generators,
    minimal_generators_of,
    non_redundant_rules,
    redundancy_ratio,
)
from repro.mining.rules import generate_rules
from repro.mining.transactions import TransactionDatabase


class TestMinimalGenerators:
    def test_generators_have_the_closed_sets_closure(self, toy_database):
        for fi in fpclose(toy_database, 1):
            for generator in minimal_generators_of(
                toy_database, fi.items, fi.support
            ):
                assert closure(toy_database, generator) == fi.items

    def test_generators_are_minimal(self, toy_database):
        for fi in fpclose(toy_database, 1):
            for generator in minimal_generators_of(
                toy_database, fi.items, fi.support
            ):
                for item in generator:
                    smaller = generator - {item}
                    if smaller:
                        assert toy_database.support(smaller) != fi.support

    def test_known_generator(self, toy_database):
        # {a, b} is closed with support 3; {b} alone has support 3 →
        # {b} is its unique minimal generator.
        catalog = toy_database.catalog
        generators = minimal_generators_of(
            toy_database, catalog.encode(["a", "b"]), 3
        )
        assert generators == [catalog.encode(["b"])]

    def test_closed_singleton_is_its_own_generator(self, toy_database):
        catalog = toy_database.catalog
        generators = minimal_generators_of(toy_database, catalog.encode(["a"]), 4)
        assert generators == [catalog.encode(["a"])]

    def test_every_closed_set_has_a_generator(self, toy_database):
        closed = fpclose(toy_database, 1)
        by_closed = minimal_generators(toy_database, closed)
        assert all(generators for generators in by_closed.values())

    def test_empty_itemset_rejected(self, toy_database):
        with pytest.raises(ConfigError):
            minimal_generators_of(toy_database, frozenset(), 1)


class TestNonRedundantRules:
    def test_antecedents_are_generators(self, toy_database):
        closed = fpclose(toy_database, 1)
        generator_sets = {
            g
            for generators in minimal_generators(toy_database, closed).values()
            for g in generators
        }
        for rule in non_redundant_rules(toy_database, closed):
            assert rule.antecedent in generator_sets

    def test_rule_metrics_exact(self, toy_database):
        closed = fpclose(toy_database, 1)
        for rule in non_redundant_rules(toy_database, closed):
            assert rule.metrics.n_joint == toy_database.support(rule.items)
            assert rule.metrics.n_antecedent == toy_database.support(
                rule.antecedent
            )

    def test_confidence_filter(self, toy_database):
        closed = fpclose(toy_database, 1)
        strict = non_redundant_rules(toy_database, closed, min_confidence=0.9)
        assert all(rule.confidence >= 0.9 for rule in strict)
        loose = non_redundant_rules(toy_database, closed)
        assert len(strict) <= len(loose)

    def test_covers_all_traditional_rules(self, toy_database):
        """Every traditional rule's (support, confidence) is witnessed by
        a non-redundant rule with more-general antecedent and
        more-specific consequent — the losslessness claim."""
        closed = fpclose(toy_database, 1)
        non_redundant = non_redundant_rules(toy_database, closed)
        traditional = generate_rules(fpgrowth(toy_database, 1), toy_database)
        for rule in traditional:
            witnesses = [
                nr
                for nr in non_redundant
                if nr.antecedent <= rule.antecedent
                and rule.items <= nr.items
                and nr.metrics.n_joint == rule.metrics.n_joint
                and nr.metrics.n_antecedent == rule.metrics.n_antecedent
            ]
            assert witnesses, rule.describe(toy_database.catalog)

    def test_smaller_than_traditional_rule_space(self):
        db = TransactionDatabase.from_labelled(
            [["a", "b", "c"], ["a", "b", "c"], ["a", "b"], ["a", "c"], ["a"]]
        )
        closed = fpclose(db, 1)
        non_redundant = non_redundant_rules(db, closed)
        traditional = generate_rules(fpgrowth(db, 1), db)
        assert len(non_redundant) < len(traditional)

    def test_no_duplicate_rules(self, toy_database):
        closed = fpclose(toy_database, 1)
        rules = non_redundant_rules(toy_database, closed)
        keys = [(rule.antecedent, rule.consequent) for rule in rules]
        assert len(keys) == len(set(keys))


class TestRedundancyRatio:
    def test_basic(self):
        assert redundancy_ratio(100, 25) == pytest.approx(0.75)

    def test_zero_rules(self):
        assert redundancy_ratio(0, 0) == 0.0

    def test_clamped(self):
        assert redundancy_ratio(10, 20) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            redundancy_ratio(-1, 0)
