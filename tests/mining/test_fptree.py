"""Tests for the FP-tree data structure."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.fptree import FPTree, rank_items


class TestRankItems:
    def test_descending_support_order(self):
        order = rank_items({1: 5, 2: 9, 3: 1})
        assert order == {2: 0, 1: 1, 3: 2}

    def test_ties_break_by_item_id(self):
        order = rank_items({5: 3, 2: 3})
        assert order == {2: 0, 5: 1}


class TestFPTreeConstruction:
    def _tree(self):
        transactions = [
            {0, 1, 2},
            {0, 1},
            {0, 2},
            {1, 2},
            {0},
        ]
        supports = {0: 4, 1: 3, 2: 3}
        return FPTree.from_transactions(transactions, supports)

    def test_item_support_totals(self):
        tree = self._tree()
        assert tree.item_support(0) == 4
        assert tree.item_support(1) == 3
        assert tree.item_support(2) == 3

    def test_shared_prefix_compression(self):
        tree = self._tree()
        # Item 0 heads every transaction containing it → exactly one node.
        assert len(tree.headers[0]) == 1
        assert tree.headers[0][0].count == 4

    def test_infrequent_items_filtered_at_build(self):
        tree = FPTree.from_transactions([{0, 1}, {0, 2}], {0: 2})
        assert tree.item_support(1) == 0
        assert tree.item_support(2) == 0

    def test_insert_unknown_item_raises(self):
        tree = FPTree({0: 0})
        with pytest.raises(MiningError, match="item order"):
            tree.insert([7], count=1)

    def test_insert_nonpositive_count_raises(self):
        tree = FPTree({0: 0})
        with pytest.raises(MiningError):
            tree.insert([0], count=0)

    def test_is_empty(self):
        assert FPTree({}).is_empty()
        tree = FPTree({0: 0})
        tree.insert([0], 1)
        assert not tree.is_empty()


class TestPrefixPathsAndConditionals:
    def test_prefix_paths_counts(self):
        tree = FPTree.from_transactions(
            [{0, 1, 2}, {0, 1, 2}, {1, 2}], {0: 2, 1: 3, 2: 3}
        )
        # Order is 1, 2, 0 (support 3, 3, 2; ties by id). Paths of item 0:
        paths = tree.prefix_paths(0)
        assert len(paths) == 1
        items, count = paths[0]
        assert set(items) == {1, 2}
        assert count == 2

    def test_conditional_tree_filters_below_support(self):
        tree = FPTree.from_transactions(
            [{0, 1}, {0, 2}, {0, 1}], {0: 3, 1: 2, 2: 1}
        )
        conditional = tree.conditional_tree(1, min_support=2)
        assert conditional.item_support(0) == 2
        conditional_low = tree.conditional_tree(2, min_support=2)
        # Item 0 appears once in 2's pattern base → dropped.
        assert conditional_low.is_empty()

    def test_path_to_root_excludes_root(self):
        tree = FPTree.from_transactions([{0, 1, 2}], {0: 1, 1: 1, 2: 1})
        deepest = tree.headers[2][0] if tree.item_order[2] == 2 else None
        # find the node whose item has the deepest rank
        deepest_item = max(tree.item_order, key=tree.item_order.__getitem__)
        node = tree.headers[deepest_item][0]
        assert set(node.path_to_root()) == {0, 1, 2} - {deepest_item}


class TestSinglePath:
    def test_chain_detected(self):
        tree = FPTree.from_transactions([{0, 1, 2}, {0, 1}], {0: 2, 1: 2, 2: 1})
        path = tree.single_path()
        assert path is not None
        items = [item for item, _ in path]
        counts = [count for _, count in path]
        assert items == sorted(items, key=lambda i: tree.item_order[i])
        assert counts == sorted(counts, reverse=True)

    def test_branching_returns_none(self):
        tree = FPTree.from_transactions([{0, 1}, {0, 2}], {0: 2, 1: 1, 2: 1})
        assert tree.single_path() is None

    def test_empty_tree_is_trivial_single_path(self):
        assert FPTree({}).single_path() == []
