"""Tests for the Galois closure operator."""

from __future__ import annotations

from repro.mining.closure import closure, filter_closed, is_closed
from repro.mining.transactions import TransactionDatabase


class TestClosure:
    def test_closure_adds_always_cooccurring_items(self, toy_database):
        catalog = toy_database.catalog
        # b only ever occurs with a.
        closed = closure(toy_database, catalog.encode(["b"]))
        assert closed == catalog.encode(["a", "b"])

    def test_closed_itemset_is_fixed_point(self, toy_database):
        catalog = toy_database.catalog
        items = catalog.encode(["a", "b"])
        assert closure(toy_database, items) == items

    def test_closure_is_idempotent(self, toy_database):
        catalog = toy_database.catalog
        once = closure(toy_database, catalog.encode(["c"]))
        assert closure(toy_database, once) == once

    def test_closure_is_extensive(self, toy_database):
        catalog = toy_database.catalog
        for labels in (["a"], ["b"], ["c"], ["a", "e"]):
            items = catalog.encode(labels)
            assert items <= closure(toy_database, items)

    def test_closure_preserves_support(self, toy_database):
        catalog = toy_database.catalog
        for labels in (["b"], ["c"], ["e"]):
            items = catalog.encode(labels)
            closed = closure(toy_database, items)
            assert toy_database.support(closed) == toy_database.support(items)

    def test_closure_of_unsupported_itemset_is_identity(self, toy_database):
        catalog = toy_database.catalog
        items = catalog.encode(["a", "f"])  # never co-occur
        assert closure(toy_database, items) == items

    def test_closure_of_empty_itemset(self, toy_database):
        # No item occurs in every transaction → closure(∅) = ∅.
        assert closure(toy_database, frozenset()) == frozenset()

    def test_closure_of_empty_with_universal_item(self):
        db = TransactionDatabase.from_labelled([["u", "a"], ["u", "b"]])
        assert closure(db, frozenset()) == db.catalog.encode(["u"])


class TestIsClosed:
    def test_closed_cases(self, toy_database):
        catalog = toy_database.catalog
        assert is_closed(toy_database, catalog.encode(["a"]))
        assert is_closed(toy_database, catalog.encode(["a", "b"]))

    def test_non_closed_cases(self, toy_database):
        catalog = toy_database.catalog
        assert not is_closed(toy_database, catalog.encode(["b"]))
        assert not is_closed(toy_database, catalog.encode(["c"]))  # c ⇒ a,b

    def test_unsupported_itemset_is_not_closed(self, toy_database):
        catalog = toy_database.catalog
        assert not is_closed(toy_database, catalog.encode(["a", "f"]))

    def test_filter_closed(self, toy_database):
        catalog = toy_database.catalog
        candidates = [
            catalog.encode(["a"]),
            catalog.encode(["b"]),
            catalog.encode(["a", "b"]),
        ]
        kept = filter_closed(toy_database, candidates)
        assert kept == [catalog.encode(["a"]), catalog.encode(["a", "b"])]
