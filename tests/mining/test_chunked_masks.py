"""Unit tests for the chunked (and diffset) tidset representation.

Every chunked operation in :mod:`repro.mining.bitsets` has a trivially
correct monolithic-int counterpart (``&``, ``bit_count``, subset via
``v & m == v``); these tests assert agreement on randomized masks that
straddle multiple 4096-bit blocks, plus the structural invariants the
merge relies on: no zero blocks are ever stored, and dense items are
held in diffset form.
"""

from __future__ import annotations

import random

import pytest

from repro.mining.bitsets import (
    BLOCK_BITS,
    ChunkedItemMasks,
    chunk_and,
    chunk_disjoint,
    chunk_mask,
    chunk_popcount,
    chunk_tids,
    chunk_unmask,
)

N_BITS = 3 * BLOCK_BITS + 137  # force multi-block masks with a ragged top


def random_mask(rng: random.Random, density: float) -> int:
    mask = 0
    for bit in range(0, N_BITS, 97):  # sparse scaffold across all blocks
        if rng.random() < density:
            mask |= 1 << bit
    # a dense clump inside one block
    clump = rng.randrange(N_BITS - 64)
    mask |= rng.getrandbits(64) << clump
    return mask


@pytest.fixture(params=[7, 21, 1999])
def rng(request):
    return random.Random(request.param)


class TestChunkOps:
    def test_round_trip(self, rng):
        for density in (0.0, 0.3, 0.9):
            mask = random_mask(rng, density)
            blocks = chunk_mask(mask)
            assert chunk_unmask(blocks) == mask
            assert all(block for block in blocks.values())

    def test_and_matches_int_and(self, rng):
        for _ in range(20):
            a, b = random_mask(rng, 0.4), random_mask(rng, 0.4)
            expected = a & b
            out = chunk_and(chunk_mask(a), chunk_mask(b))
            assert chunk_unmask(out) == expected
            assert all(block for block in out.values())

    def test_popcount_matches_bit_count(self, rng):
        for _ in range(10):
            mask = random_mask(rng, 0.5)
            assert chunk_popcount(chunk_mask(mask)) == mask.bit_count()

    def test_disjoint_matches_int_test(self, rng):
        for _ in range(20):
            a, b = random_mask(rng, 0.2), random_mask(rng, 0.2)
            assert chunk_disjoint(chunk_mask(a), chunk_mask(b)) == (
                a & b == 0
            )
        assert chunk_disjoint(chunk_mask(0), chunk_mask(0))

    def test_tids_match_set_bits(self, rng):
        mask = random_mask(rng, 0.6)
        expected = [t for t in range(N_BITS + 64) if mask >> t & 1]
        assert list(chunk_tids(chunk_mask(mask))) == expected


def build_table(rng: random.Random):
    """A small item-mask table with sparse, dense, and absent items."""
    n = N_BITS
    universe = (1 << n) - 1
    masks = {
        0: random_mask(rng, 0.3),
        1: universe ^ random_mask(rng, 0.1),  # dense -> diffset form
        2: 0,
        3: 1 << (n - 1),
    }
    supports = {item: mask.bit_count() for item, mask in masks.items()}
    return ChunkedItemMasks(masks, supports, n), masks


class TestChunkedItemMasks:
    def test_dense_items_use_diffsets(self, rng):
        table, masks = build_table(rng)
        assert table.entry(1)[0] is True
        assert table.entry(0)[0] is False
        # positive() always reassembles the true tidset either way
        for item, mask in masks.items():
            assert chunk_unmask(table.positive(item)) == mask

    def test_and_item_matches_int_and(self, rng):
        table, masks = build_table(rng)
        for _ in range(10):
            v = random_mask(rng, 0.5)
            for item, mask in masks.items():
                out = table.and_item(chunk_mask(v), item)
                assert chunk_unmask(out) == v & mask
                assert all(block for block in out.values())

    def test_covers_matches_subset_test(self, rng):
        table, masks = build_table(rng)
        for item, mask in masks.items():
            # a genuine subset of the item's tidset...
            sub = mask & random_mask(rng, 0.7)
            assert table.covers(item, chunk_mask(sub))
            # ...and one poisoned with a bit outside it (when possible)
            outside = ~mask & ((1 << N_BITS) - 1)
            if outside:
                low = outside & -outside
                assert not table.covers(item, chunk_mask(sub | low))

    def test_items_by_support_is_descending_prefix_order(self, rng):
        table, _masks = build_table(rng)
        items, neg_supports = table.items_by_support()
        assert sorted(items) == [0, 1, 2, 3]
        assert neg_supports == sorted(neg_supports)
        assert [-table.support(i) for i in items] == neg_supports

    def test_unknown_item_is_empty(self, rng):
        table, _masks = build_table(rng)
        assert table.support(99) == 0
        assert table.positive(99) == {}
        assert table.and_item(chunk_mask(random_mask(rng, 0.5)), 99) == {}
