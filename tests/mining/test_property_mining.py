"""Property-based tests of the mining substrate (hypothesis).

The invariants checked here are the load-bearing ones:

- FP-Growth ≡ Apriori on arbitrary databases (two independent
  implementations must agree exactly);
- the closed miner ≡ brute-force closure filtering of FP-Growth output;
- the closure operator is extensive, idempotent, monotone and
  support-preserving;
- mined supports always equal directly counted supports;
- anti-monotonicity: a superset never has higher support.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mining.apriori import apriori
from repro.mining.closure import closure, is_closed
from repro.mining.fpclose import fpclose
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionDatabase

ITEMS = [f"i{k}" for k in range(8)]

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=6),
    min_size=1,
    max_size=30,
)


def build_db(transactions) -> TransactionDatabase:
    return TransactionDatabase.from_labelled(transactions)


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, threshold=st.integers(1, 5))
def test_fpgrowth_equals_apriori(transactions, threshold):
    db = build_db(transactions)
    fg = {(fi.items, fi.support) for fi in fpgrowth(db, threshold)}
    ap = {(fi.items, fi.support) for fi in apriori(db, threshold)}
    assert fg == ap


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, threshold=st.integers(1, 5))
def test_fpclose_equals_bruteforce(transactions, threshold):
    db = build_db(transactions)
    closed = {(fi.items, fi.support) for fi in fpclose(db, threshold)}
    brute = {
        (fi.items, fi.support)
        for fi in fpgrowth(db, threshold)
        if is_closed(db, fi.items)
    }
    assert closed == brute


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, threshold=st.integers(1, 4))
def test_mined_supports_are_exact(transactions, threshold):
    db = build_db(transactions)
    for fi in fpgrowth(db, threshold):
        assert fi.support == db.support(fi.items)
        assert fi.support >= threshold


@settings(max_examples=60, deadline=None)
@given(
    transactions=transactions_strategy,
    seed_items=st.sets(st.sampled_from(ITEMS), min_size=1, max_size=3),
)
def test_closure_axioms(transactions, seed_items):
    db = build_db(transactions)
    items = frozenset(
        db.catalog.id(label) for label in seed_items if label in db.catalog
    )
    if not items:
        return
    closed = closure(db, items)
    # extensive
    assert items <= closed
    # idempotent
    assert closure(db, closed) == closed
    # support-preserving (when the itemset occurs at all)
    if db.tidset_of(items):
        assert db.support(closed) == db.support(items)


@settings(max_examples=40, deadline=None)
@given(transactions=transactions_strategy)
def test_support_anti_monotone(transactions):
    db = build_db(transactions)
    mined = fpgrowth(db, 1)
    by_items = {fi.items: fi.support for fi in mined}
    for items, support in by_items.items():
        for item in items:
            smaller = items - {item}
            if smaller and smaller in by_items:
                assert by_items[smaller] >= support


@settings(max_examples=40, deadline=None)
@given(transactions=transactions_strategy, threshold=st.integers(1, 4))
def test_every_transaction_itemset_is_covered_by_a_closed_set(
    transactions, threshold
):
    """Each transaction with support ≥ threshold lies inside some closed set
    of at least that support (closed sets compress without losing covers)."""
    db = build_db(transactions)
    closed = fpclose(db, threshold)
    for transaction in db:
        support = db.support(transaction)
        if support < threshold:
            continue
        assert any(
            transaction <= fi.items and fi.support >= support for fi in closed
        )
