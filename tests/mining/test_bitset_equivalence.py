"""Cross-checks of the bitset mining core against the set-based reference.

The bitset rewrite (``fpclose`` over integer bitmasks, the memoized
:class:`~repro.mining.bitsets.SupportOracle`) is only a performance
change — every answer must match the frozenset-tidset implementations
bit for bit. These tests enforce that on two fronts:

- a seed grid of synthetic FAERS quarters (realistic density, planted
  interactions, verbatim tails) where ``fpclose`` must reproduce
  ``fpclose_reference`` exactly and the oracle must agree with
  ``TransactionDatabase.support`` on every mined itemset and subset;
- hypothesis-generated adversarial databases, where shapes no fixture
  would produce (duplicate transactions, universal items, singleton
  databases) get thrown at both miners and the oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faers import ReportDataset, SyntheticConfig, SyntheticFAERSGenerator
from repro.mining.bitsets import BitsetIndex, SupportOracle
from repro.mining.fpclose import fpclose, fpclose_reference
from repro.mining.transactions import TransactionDatabase

SEED_GRID = (11, 23, 47, 2014)


def as_pairs(itemsets):
    return {(fi.items, fi.support) for fi in itemsets}


@pytest.fixture(scope="module", params=SEED_GRID)
def synthetic_database(request):
    config = SyntheticConfig(
        n_reports=400, n_drugs=120, n_adrs=40, seed=request.param
    )
    reports = SyntheticFAERSGenerator(config).generate()
    return ReportDataset(reports).encode().database


class TestMinerEquivalenceOnSyntheticQuarters:
    @pytest.mark.parametrize("min_support", [3, 5])
    def test_bitset_miner_matches_reference(
        self, synthetic_database, min_support
    ):
        bitset = fpclose(synthetic_database, min_support, max_len=5)
        reference = fpclose_reference(synthetic_database, min_support, max_len=5)
        assert as_pairs(bitset) == as_pairs(reference)

    def test_bitset_miner_matches_reference_uncapped(self, synthetic_database):
        bitset = fpclose(synthetic_database, 6)
        reference = fpclose_reference(synthetic_database, 6)
        assert as_pairs(bitset) == as_pairs(reference)

    def test_fractional_threshold_agrees(self, synthetic_database):
        assert as_pairs(fpclose(synthetic_database, 0.01, max_len=4)) == as_pairs(
            fpclose_reference(synthetic_database, 0.01, max_len=4)
        )


class TestOracleEquivalenceOnSyntheticQuarters:
    def test_oracle_matches_database_on_mined_itemsets(self, synthetic_database):
        oracle = SupportOracle.for_database(synthetic_database)
        for fi in fpclose(synthetic_database, 4, max_len=5):
            assert oracle.support(fi.items) == synthetic_database.support(
                fi.items
            )
            # MCAC construction queries every proper subset; spot-check
            # the one-item-removed layer the cache serves most often.
            for item in fi.items:
                subset = fi.items - {item}
                if subset:
                    assert oracle.support(subset) == synthetic_database.support(
                        subset
                    )

    def test_oracle_memoization_is_invisible(self, synthetic_database):
        oracle = SupportOracle.for_database(synthetic_database)
        items = sorted(synthetic_database.items_present())[:12]
        queries = [frozenset({a, b}) for a in items for b in items if a != b]
        first = [oracle.support(q) for q in queries]
        second = [oracle.support(q) for q in queries]
        assert first == second
        assert second == [synthetic_database.support(q) for q in queries]
        assert oracle.hits >= len(queries)

    def test_oracle_tidsets_match_database(self, synthetic_database):
        oracle = SupportOracle.for_database(synthetic_database)
        items = sorted(synthetic_database.items_present())[:10]
        for a in items:
            for b in items:
                query = frozenset({a, b})
                assert oracle.tidset(query) == synthetic_database.tidset_of(
                    query
                )


ITEMS = [f"i{k}" for k in range(8)]

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=6),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(
    transactions=transactions_strategy,
    threshold=st.integers(1, 5),
    max_len=st.none() | st.integers(1, 4),
)
def test_bitset_miner_matches_reference_property(
    transactions, threshold, max_len
):
    db = TransactionDatabase.from_labelled(transactions)
    assert as_pairs(fpclose(db, threshold, max_len=max_len)) == as_pairs(
        fpclose_reference(db, threshold, max_len=max_len)
    )


@settings(max_examples=60, deadline=None)
@given(
    transactions=transactions_strategy,
    query=st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
)
def test_oracle_matches_database_property(transactions, query):
    db = TransactionDatabase.from_labelled(transactions)
    oracle = SupportOracle(BitsetIndex(db))
    items = frozenset(
        db.catalog.id(label) for label in query if label in db.catalog
    )
    if not items:
        return
    assert oracle.support(items) == db.support(items)
    assert oracle.tidset(items) == db.tidset_of(items)
