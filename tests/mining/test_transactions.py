"""Tests for the item catalog and transaction database."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, MiningError, UnknownItemError
from repro.mining.transactions import (
    FrequentItemset,
    ItemCatalog,
    TransactionDatabase,
    resolve_min_support,
    sort_itemset_labels,
)


class TestItemCatalog:
    def test_ids_are_dense_and_first_seen_ordered(self):
        catalog = ItemCatalog()
        assert catalog.add("x") == 0
        assert catalog.add("y") == 1
        assert catalog.add("z") == 2
        assert len(catalog) == 3

    def test_re_add_returns_existing_id(self):
        catalog = ItemCatalog()
        first = catalog.add("x", kind="drug")
        assert catalog.add("x", kind="drug") == first
        assert len(catalog) == 1

    def test_re_add_with_conflicting_kind_raises(self):
        catalog = ItemCatalog()
        catalog.add("x", kind="drug")
        with pytest.raises(MiningError, match="kind"):
            catalog.add("x", kind="adr")

    def test_empty_label_rejected(self):
        with pytest.raises(ConfigError):
            ItemCatalog().add("")

    def test_non_string_label_rejected(self):
        with pytest.raises(ConfigError):
            ItemCatalog().add(7)  # type: ignore[arg-type]

    def test_id_lookup_unknown_raises(self):
        with pytest.raises(UnknownItemError):
            ItemCatalog().id("ghost")

    def test_get_id_returns_none_for_unknown(self):
        assert ItemCatalog().get_id("ghost") is None

    def test_label_roundtrip(self):
        catalog = ItemCatalog()
        item = catalog.add("ASPIRIN", "drug")
        assert catalog.label(item) == "ASPIRIN"
        assert catalog.kind_of(item) == "drug"

    def test_label_of_unknown_id_raises(self):
        with pytest.raises(UnknownItemError):
            ItemCatalog().label(4)

    def test_ids_of_kind_partitions(self, catalog_drugs_adrs):
        drugs = catalog_drugs_adrs.ids_of_kind("drug")
        adrs = catalog_drugs_adrs.ids_of_kind("adr")
        assert drugs == {0, 1}
        assert adrs == {2, 3}
        assert not drugs & adrs

    def test_labels_sorted_alphabetically(self, catalog_drugs_adrs):
        assert catalog_drugs_adrs.labels({1, 0}) == ("ASPIRIN", "WARFARIN")

    def test_encode_maps_labels_to_ids(self, catalog_drugs_adrs):
        assert catalog_drugs_adrs.encode(["PAIN", "ASPIRIN"]) == {0, 3}

    def test_contains_and_iteration(self):
        catalog = ItemCatalog()
        catalog.add("x")
        assert "x" in catalog
        assert "y" not in catalog
        assert list(catalog) == ["x"]


class TestTransactionDatabase:
    def test_len_and_indexing(self, toy_database):
        assert len(toy_database) == 5
        catalog = toy_database.catalog
        assert toy_database[0] == catalog.encode(["a", "b", "c"])

    def test_single_item_support(self, toy_database):
        catalog = toy_database.catalog
        assert toy_database.support({catalog.id("a")}) == 4
        assert toy_database.support({catalog.id("f")}) == 1

    def test_itemset_support_via_intersection(self, toy_database):
        catalog = toy_database.catalog
        assert toy_database.support(catalog.encode(["a", "b"])) == 3
        assert toy_database.support(catalog.encode(["a", "b", "c"])) == 2
        assert toy_database.support(catalog.encode(["a", "f"])) == 0

    def test_empty_itemset_support_is_database_size(self, toy_database):
        assert toy_database.support(frozenset()) == 5

    def test_tidset_of_empty_is_all_tids(self, toy_database):
        assert toy_database.tidset_of(frozenset()) == frozenset(range(5))

    def test_tidset_of_unknown_item_is_empty(self, toy_database):
        # Item id registered in the catalog but absent from every transaction.
        ghost = toy_database.catalog.add("ghost")
        assert toy_database.tidset(ghost) == frozenset()

    def test_out_of_range_item_id_rejected_at_construction(self):
        catalog = ItemCatalog()
        catalog.add("x")
        with pytest.raises(MiningError, match="outside catalog"):
            TransactionDatabase([{0, 5}], catalog)

    def test_item_supports_covers_present_items_only(self, toy_database):
        supports = toy_database.item_supports()
        assert supports[toy_database.catalog.id("a")] == 4
        assert len(supports) == 6

    def test_transactions_with(self, toy_database):
        catalog = toy_database.catalog
        rows = toy_database.transactions_with(catalog.encode(["a", "b"]))
        assert len(rows) == 3
        assert all(catalog.encode(["a", "b"]) <= row for row in rows)

    def test_restrict_to_items_drops_emptied_rows(self, toy_database):
        catalog = toy_database.catalog
        keep = catalog.encode(["d", "e", "f"])
        projected = toy_database.restrict_to_items(keep)
        # rows 0 and 1 ({a,b,c}) vanish entirely
        assert len(projected) == 3
        assert all(row <= keep for row in projected)

    def test_restrict_shares_catalog(self, toy_database):
        projected = toy_database.restrict_to_items({0})
        assert projected.catalog is toy_database.catalog

    def test_describe_statistics(self, toy_database):
        stats = toy_database.describe()
        assert stats.n_transactions == 5
        assert stats.n_distinct_items == 6
        assert stats.total_item_occurrences == 14
        assert stats.max_transaction_length == 3
        assert stats.mean_transaction_length == pytest.approx(14 / 5)

    def test_describe_empty_database(self):
        stats = TransactionDatabase([], ItemCatalog()).describe()
        assert stats.n_transactions == 0
        assert stats.mean_transaction_length == 0.0

    def test_from_labelled_with_kinds(self):
        db = TransactionDatabase.from_labelled(
            [["d", "x"]], kinds={"d": "drug", "x": "adr"}
        )
        assert db.catalog.kind_of(db.catalog.id("d")) == "drug"
        assert db.catalog.kind_of(db.catalog.id("x")) == "adr"

    def test_from_labelled_reuses_catalog(self, catalog_drugs_adrs):
        db = TransactionDatabase.from_labelled(
            [["ASPIRIN", "PAIN"]],
            kinds={"ASPIRIN": "drug", "PAIN": "adr"},
            catalog=catalog_drugs_adrs,
        )
        assert db.catalog is catalog_drugs_adrs
        assert db.support({0}) == 1

    def test_duplicate_items_in_transaction_collapse(self):
        db = TransactionDatabase.from_labelled([["a", "a", "b"]])
        assert len(db[0]) == 2


class TestResolveMinSupport:
    def test_absolute_passthrough(self):
        assert resolve_min_support(7, 100) == 7

    def test_fraction_ceils(self):
        assert resolve_min_support(0.05, 100) == 5
        assert resolve_min_support(0.051, 100) == 6

    def test_tiny_fraction_never_zero(self):
        assert resolve_min_support(0.0001, 10) == 1

    def test_zero_absolute_rejected(self):
        with pytest.raises(ConfigError):
            resolve_min_support(0, 100)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ConfigError):
            resolve_min_support(1.5, 100)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            resolve_min_support(True, 100)


class TestFrequentItemset:
    def test_negative_support_rejected(self):
        with pytest.raises(MiningError):
            FrequentItemset(frozenset({1}), -1)

    def test_len_and_contains(self):
        itemset = FrequentItemset(frozenset({1, 2}), 3)
        assert len(itemset) == 2
        assert 1 in itemset
        assert 9 not in itemset

    def test_sort_itemset_labels_deterministic(self, toy_database):
        catalog = toy_database.catalog
        itemsets = [
            FrequentItemset(catalog.encode(["b", "a"]), 3),
            FrequentItemset(catalog.encode(["a"]), 4),
            FrequentItemset(catalog.encode(["c"]), 3),
        ]
        rendered = sort_itemset_labels(itemsets, catalog)
        assert rendered == [
            (("a",), 4),
            (("a", "b"), 3),
            (("c",), 3),
        ]
