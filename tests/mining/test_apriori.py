"""Tests for the Apriori baseline miner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mining.apriori import apriori, _generate_candidates
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import ItemCatalog, TransactionDatabase


def as_dict(itemsets):
    return {fi.items: fi.support for fi in itemsets}


class TestApriori:
    def test_matches_fpgrowth_on_toy_database(self, toy_database):
        for threshold in (1, 2, 3):
            assert as_dict(apriori(toy_database, threshold)) == as_dict(
                fpgrowth(toy_database, threshold)
            )

    def test_exact_values(self, toy_database):
        catalog = toy_database.catalog
        mined = as_dict(apriori(toy_database, 2))
        assert mined[catalog.encode(["a", "b", "c"])] == 2
        assert catalog.encode(["c", "d"]) not in mined

    def test_max_len(self, toy_database):
        mined = apriori(toy_database, 1, max_len=2)
        assert max(len(fi.items) for fi in mined) == 2

    def test_empty_database(self):
        assert apriori(TransactionDatabase([], ItemCatalog()), 1) == []

    def test_invalid_max_len(self, toy_database):
        with pytest.raises(ConfigError):
            apriori(toy_database, 1, max_len=0)


class TestCandidateGeneration:
    def test_join_requires_shared_prefix(self):
        frequent = [frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})]
        candidates = _generate_candidates(frequent, 3)
        assert candidates == {frozenset({0, 1, 2})}

    def test_prune_removes_candidates_with_infrequent_subset(self):
        # {1,2} missing → {0,1,2} must be pruned.
        frequent = [frozenset({0, 1}), frozenset({0, 2})]
        assert _generate_candidates(frequent, 3) == set()

    def test_singleton_join(self):
        frequent = [frozenset({0}), frozenset({1}), frozenset({2})]
        candidates = _generate_candidates(frequent, 2)
        assert candidates == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        }

    def test_empty_input(self):
        assert _generate_candidates([], 2) == set()
