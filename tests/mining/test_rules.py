"""Tests for association-rule generation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mining.fpclose import fpclose
from repro.mining.fpgrowth import fpgrowth
from repro.mining.measures import RuleMetrics
from repro.mining.rules import (
    AssociationRule,
    count_all_splits,
    count_partitioned_splits,
    generate_rules,
    partitioned_rules,
)
from repro.mining.transactions import FrequentItemset


def _metrics():
    return RuleMetrics.from_counts(2, 3, 4, 10)


class TestAssociationRule:
    def test_overlapping_sides_rejected(self):
        with pytest.raises(ConfigError, match="overlap"):
            AssociationRule(frozenset({1, 2}), frozenset({2, 3}), _metrics())

    def test_empty_side_rejected(self):
        with pytest.raises(ConfigError):
            AssociationRule(frozenset(), frozenset({1}), _metrics())

    def test_items_union(self):
        rule = AssociationRule(frozenset({1}), frozenset({2}), _metrics())
        assert rule.items == {1, 2}

    def test_metric_shortcuts(self):
        rule = AssociationRule(frozenset({1}), frozenset({2}), _metrics())
        assert rule.confidence == rule.metrics.confidence
        assert rule.support == rule.metrics.support
        assert rule.lift == rule.metrics.lift

    def test_describe(self, toy_database):
        catalog = toy_database.catalog
        rule = AssociationRule(
            frozenset({catalog.id("a")}),
            frozenset({catalog.id("b")}),
            _metrics(),
        )
        assert rule.describe(catalog) == "[a] => [b]"


class TestGenerateRules:
    def test_all_splits_of_pair(self, toy_database):
        itemsets = [
            fi for fi in fpgrowth(toy_database, 2) if len(fi.items) == 2
        ]
        rules = generate_rules(itemsets, toy_database)
        # each 2-itemset yields exactly 2 rules
        assert len(rules) == 2 * len(itemsets)

    def test_split_count_matches_formula(self, toy_database):
        itemsets = fpgrowth(toy_database, 1)
        rules = generate_rules(itemsets, toy_database)
        assert len(rules) == count_all_splits(itemsets)

    def test_confidence_filter(self, toy_database):
        itemsets = fpgrowth(toy_database, 1)
        all_rules = generate_rules(itemsets, toy_database)
        strict = generate_rules(itemsets, toy_database, min_confidence=0.8)
        assert len(strict) < len(all_rules)
        assert all(rule.confidence >= 0.8 for rule in strict)

    def test_rule_metrics_are_exact(self, toy_database):
        catalog = toy_database.catalog
        itemsets = [FrequentItemset(catalog.encode(["a", "b"]), 3)]
        rules = generate_rules(itemsets, toy_database)
        by_antecedent = {tuple(catalog.labels(r.antecedent)): r for r in rules}
        a_to_b = by_antecedent[("a",)]
        assert a_to_b.metrics.n_antecedent == 4
        assert a_to_b.confidence == pytest.approx(3 / 4)
        b_to_a = by_antecedent[("b",)]
        assert b_to_a.confidence == pytest.approx(1.0)

    def test_singletons_skipped(self, toy_database):
        itemsets = [fi for fi in fpgrowth(toy_database, 1) if len(fi.items) == 1]
        assert generate_rules(itemsets, toy_database) == []

    def test_invalid_confidence_rejected(self, toy_database):
        with pytest.raises(ConfigError):
            generate_rules([], toy_database, min_confidence=1.5)


class TestCountAllSplits:
    def test_formula(self):
        itemsets = [
            FrequentItemset(frozenset({1}), 5),
            FrequentItemset(frozenset({1, 2}), 4),
            FrequentItemset(frozenset({1, 2, 3}), 3),
        ]
        # 0 + (2^2-2) + (2^3-2) = 0 + 2 + 6
        assert count_all_splits(itemsets) == 8


class TestPartitionedRules:
    def test_one_rule_per_clean_split(self, drug_adr_database):
        closed = fpclose(drug_adr_database, 2)
        rules = partitioned_rules(closed, drug_adr_database)
        catalog = drug_adr_database.catalog
        drug_ids = catalog.ids_of_kind("drug")
        adr_ids = catalog.ids_of_kind("adr")
        for rule in rules:
            assert rule.antecedent <= drug_ids
            assert rule.consequent <= adr_ids

    def test_planted_signal_present(self, drug_adr_database):
        closed = fpclose(drug_adr_database, 2)
        rules = partitioned_rules(closed, drug_adr_database)
        catalog = drug_adr_database.catalog
        signal = [
            r
            for r in rules
            if r.antecedent == catalog.encode(["D1", "D2"])
            and catalog.encode(["X"]) <= r.consequent
        ]
        assert signal, "the D1+D2 => X rule must be mined"
        assert signal[0].confidence >= 0.9

    def test_drug_only_itemsets_skipped(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        itemsets = [FrequentItemset(catalog.encode(["D1", "D2"]), 4)]
        assert partitioned_rules(itemsets, drug_adr_database) == []

    def test_adr_only_itemsets_skipped(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        itemsets = [FrequentItemset(catalog.encode(["X", "Y"]), 1)]
        assert partitioned_rules(itemsets, drug_adr_database) == []

    def test_itemsets_with_foreign_kind_skipped(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        foreign = catalog.add("NOTE", kind="annotation")
        itemsets = [
            FrequentItemset(
                catalog.encode(["D1", "X"]) | {foreign}, 1
            )
        ]
        assert partitioned_rules(itemsets, drug_adr_database) == []

    def test_count_partitioned_matches_generation(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        itemsets = fpgrowth(drug_adr_database, 2)
        rules = partitioned_rules(itemsets, drug_adr_database)
        count = count_partitioned_splits(
            itemsets, catalog.ids_of_kind("drug"), catalog.ids_of_kind("adr")
        )
        assert count == len(rules)
