"""Tests for the closed frequent itemset miner."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.mining.closure import is_closed
from repro.mining.fpclose import fpclose
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import ItemCatalog, TransactionDatabase


def as_dict(itemsets):
    return {fi.items: fi.support for fi in itemsets}


class TestFPCloseBasics:
    def test_every_result_is_closed(self, toy_database):
        for fi in fpclose(toy_database, 1):
            assert is_closed(toy_database, fi.items), toy_database.catalog.labels(
                fi.items
            )

    def test_non_closed_itemsets_absent(self, toy_database):
        catalog = toy_database.catalog
        mined = as_dict(fpclose(toy_database, 1))
        # {b} always co-occurs with {a}: not closed.
        assert catalog.encode(["b"]) not in mined
        assert catalog.encode(["a", "b"]) in mined

    def test_supports_match_database(self, toy_database):
        for fi in fpclose(toy_database, 1):
            assert fi.support == toy_database.support(fi.items)

    def test_matches_bruteforce_closed_filter(self, toy_database):
        closed = as_dict(fpclose(toy_database, 1))
        brute = {
            fi.items: fi.support
            for fi in fpgrowth(toy_database, 1)
            if is_closed(toy_database, fi.items)
        }
        assert closed == brute

    def test_no_duplicates(self, toy_database):
        mined = fpclose(toy_database, 1)
        itemsets = [fi.items for fi in mined]
        assert len(itemsets) == len(set(itemsets))

    def test_closed_count_never_exceeds_frequent_count(self, toy_database):
        for threshold in (1, 2, 3):
            assert len(fpclose(toy_database, threshold)) <= len(
                fpgrowth(toy_database, threshold)
            )

    def test_max_supports_preserved(self, toy_database):
        # Every frequent itemset's support equals the support of some
        # closed superset (the compression property of closed sets).
        closed = fpclose(toy_database, 1)
        for fi in fpgrowth(toy_database, 1):
            covering = [
                c.support for c in closed if fi.items <= c.items
            ]
            assert fi.support in covering

    def test_empty_database(self):
        assert fpclose(TransactionDatabase([], ItemCatalog()), 1) == []

    def test_universal_item_forms_root_closure(self):
        db = TransactionDatabase.from_labelled([["u", "a"], ["u", "b"], ["u"]])
        mined = as_dict(fpclose(db, 1))
        u = db.catalog.encode(["u"])
        assert mined[u] == 3

    def test_identical_transactions_collapse_to_one_closed_set(self):
        db = TransactionDatabase.from_labelled([["a", "b"]] * 4)
        mined = fpclose(db, 1)
        assert len(mined) == 1
        assert mined[0].support == 4
        assert mined[0].items == db.catalog.encode(["a", "b"])


class TestFPCloseMaxLen:
    def test_emitted_closures_respect_cap(self, toy_database):
        for fi in fpclose(toy_database, 1, max_len=2):
            assert len(fi.items) <= 2

    def test_small_closures_unaffected_by_cap(self, toy_database):
        capped = as_dict(fpclose(toy_database, 1, max_len=2))
        full = {
            items: support
            for items, support in as_dict(fpclose(toy_database, 1)).items()
            if len(items) <= 2
        }
        assert capped == full

    def test_invalid_max_len(self, toy_database):
        with pytest.raises(ConfigError):
            fpclose(toy_database, 1, max_len=0)


class TestFPCloseRandomized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_databases_match_bruteforce(self, seed):
        rng = random.Random(seed)
        items = [f"i{k}" for k in range(10)]
        transactions = [
            [item for item in items if rng.random() < 0.35] or [items[0]]
            for _ in range(60)
        ]
        db = TransactionDatabase.from_labelled(transactions)
        for threshold in (1, 3, 6):
            closed = as_dict(fpclose(db, threshold))
            brute = {
                fi.items: fi.support
                for fi in fpgrowth(db, threshold)
                if is_closed(db, fi.items)
            }
            assert closed == brute, f"seed={seed} threshold={threshold}"
