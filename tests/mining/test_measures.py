"""Tests for the interestingness measures (Eqs 2.1-2.3 and companions)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.mining.measures import (
    RuleMetrics,
    coefficient_of_variation,
    confidence,
    conviction,
    jaccard,
    leverage,
    lift,
    support_fraction,
)


class TestSupportFraction:
    def test_basic(self):
        assert support_fraction(25, 100) == 0.25

    def test_zero_joint(self):
        assert support_fraction(0, 10) == 0.0

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigError):
            support_fraction(1, 0)

    def test_joint_above_total_rejected(self):
        with pytest.raises(ConfigError):
            support_fraction(11, 10)


class TestConfidence:
    def test_basic(self):
        assert confidence(3, 4) == 0.75

    def test_unobserved_antecedent_is_zero(self):
        assert confidence(0, 0) == 0.0

    def test_perfect_rule(self):
        assert confidence(5, 5) == 1.0

    def test_joint_above_antecedent_rejected(self):
        with pytest.raises(ConfigError):
            confidence(5, 4)


class TestLift:
    def test_independence_gives_one(self):
        # P(A)=0.5, P(B)=0.5, P(AB)=0.25 → lift 1
        assert lift(25, 50, 50, 100) == pytest.approx(1.0)

    def test_positive_association(self):
        assert lift(50, 50, 50, 100) == pytest.approx(2.0)

    def test_unobserved_margin_is_zero(self):
        assert lift(0, 0, 10, 100) == 0.0

    def test_symmetry_in_antecedent_consequent(self):
        assert lift(10, 20, 40, 200) == lift(10, 40, 20, 200)


class TestLeverage:
    def test_independence_gives_zero(self):
        assert leverage(25, 50, 50, 100) == pytest.approx(0.0)

    def test_positive(self):
        assert leverage(50, 50, 50, 100) == pytest.approx(0.25)

    def test_negative(self):
        assert leverage(0, 50, 50, 100) == pytest.approx(-0.25)


class TestConviction:
    def test_independence_gives_one(self):
        assert conviction(25, 50, 50, 100) == pytest.approx(1.0)

    def test_perfect_rule_is_infinite(self):
        assert conviction(10, 10, 20, 100) == math.inf

    def test_unobserved_antecedent_is_zero(self):
        assert conviction(0, 0, 20, 100) == 0.0


class TestJaccard:
    def test_identical_tidsets(self):
        assert jaccard(10, 10, 10) == 1.0

    def test_disjoint(self):
        assert jaccard(0, 5, 5) == 0.0

    def test_partial_overlap(self):
        assert jaccard(2, 4, 4) == pytest.approx(2 / 6)

    def test_empty_union(self):
        assert jaccard(0, 0, 0) == 0.0


class TestCoefficientOfVariation:
    def test_empty_is_zero(self):
        assert coefficient_of_variation([]) == 0.0

    def test_constant_values_are_zero(self):
        assert coefficient_of_variation([0.4, 0.4, 0.4]) == pytest.approx(0.0, abs=1e-12)

    def test_zero_mean_is_zero(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_known_value(self):
        # values 1, 3: mean 2, population std 1 → Cv 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_clamped_to_one(self):
        # extreme spread: raw Cv ≈ 1.73, must clamp to 1
        assert coefficient_of_variation([0.0, 0.0, 0.0, 10.0]) == 1.0


class TestRuleMetrics:
    def test_from_counts_consistency(self):
        metrics = RuleMetrics.from_counts(10, 20, 40, 200)
        assert metrics.support == pytest.approx(0.05)
        assert metrics.confidence == pytest.approx(0.5)
        assert metrics.lift == pytest.approx(0.5 / 0.2)
        assert metrics.n_joint == 10

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ConfigError):
            RuleMetrics.from_counts(30, 20, 40, 200)

    def test_margin_above_total_rejected(self):
        with pytest.raises(ConfigError):
            RuleMetrics.from_counts(10, 300, 40, 200)

    def test_value_lookup(self):
        metrics = RuleMetrics.from_counts(10, 20, 40, 200)
        assert metrics.value("confidence") == metrics.confidence
        assert metrics.value("lift") == metrics.lift

    def test_value_unknown_measure_rejected(self):
        metrics = RuleMetrics.from_counts(10, 20, 40, 200)
        with pytest.raises(ConfigError, match="unknown measure"):
            metrics.value("sorcery")
