"""Tests for the bitset support oracle (equivalence with the set backend)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiningError
from repro.mining.bitsets import BitsetIndex
from repro.mining.transactions import TransactionDatabase
from repro.signals.contingency import contingency_for

ITEMS = [f"i{k}" for k in range(9)]
transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=6),
    min_size=1,
    max_size=40,
)


class TestBitsetIndex:
    def test_single_item_support(self, toy_database):
        index = BitsetIndex(toy_database)
        for item, count in toy_database.item_supports().items():
            assert index.support({item}) == count

    def test_itemset_support_matches(self, toy_database):
        index = BitsetIndex(toy_database)
        catalog = toy_database.catalog
        for labels in (["a", "b"], ["a", "b", "c"], ["a", "f"], ["d", "e"]):
            items = catalog.encode(labels)
            assert index.support(items) == toy_database.support(items)

    def test_empty_itemset_is_full_support(self, toy_database):
        assert BitsetIndex(toy_database).support(frozenset()) == len(toy_database)

    def test_tidset_matches(self, toy_database):
        index = BitsetIndex(toy_database)
        catalog = toy_database.catalog
        items = catalog.encode(["a", "b"])
        assert index.tidset(items) == toy_database.tidset_of(items)

    def test_unknown_item_zero_support(self, toy_database):
        ghost = toy_database.catalog.add("ghost")
        assert BitsetIndex(toy_database).support({ghost}) == 0

    def test_contingency_matches_reference(self, drug_adr_database):
        index = BitsetIndex(drug_adr_database)
        catalog = drug_adr_database.catalog
        exposure = catalog.encode(["D1", "D2"])
        outcome = catalog.encode(["X"])
        table = contingency_for(drug_adr_database, exposure, outcome)
        assert index.contingency_counts(exposure, outcome) == (
            table.a,
            table.b,
            table.c,
            table.d,
        )

    def test_contingency_empty_side_rejected(self, drug_adr_database):
        index = BitsetIndex(drug_adr_database)
        with pytest.raises(MiningError):
            index.contingency_counts(frozenset(), frozenset({0}))


@settings(max_examples=60, deadline=None)
@given(
    transactions=transactions_strategy,
    query=st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
)
def test_bitset_equals_set_backend(transactions, query):
    db = TransactionDatabase.from_labelled(transactions)
    index = BitsetIndex(db)
    items = frozenset(
        db.catalog.id(label) for label in query if label in db.catalog
    )
    if not items:
        return
    assert index.support(items) == db.support(items)
    assert index.tidset(items) == db.tidset_of(items)
