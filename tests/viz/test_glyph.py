"""Tests for the contextual glyph (Figs 4.1 / 4.3)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.viz.glyph import (
    GlyphGeometry,
    glyph_layout,
    level_color,
    render_glyph,
    render_zoom_view,
)


@pytest.fixture
def cluster(mined_quarter):
    return next(c for c in mined_quarter.clusters if c.n_drugs >= 3)


class TestGeometry:
    def test_defaults_valid(self):
        geometry = GlyphGeometry()
        assert geometry.extent == geometry.ring_inner + geometry.ring_depth

    def test_inner_radius_monotone_in_confidence(self):
        geometry = GlyphGeometry()
        assert (
            geometry.inner_radius(0.0)
            < geometry.inner_radius(0.5)
            < geometry.inner_radius(1.0)
        )
        assert geometry.inner_radius(1.0) == geometry.inner_max

    def test_confidence_clamped(self):
        geometry = GlyphGeometry()
        assert geometry.inner_radius(2.0) == geometry.inner_radius(1.0)
        assert geometry.sector_outer_radius(-1.0) == geometry.ring_inner

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ConfigError):
            GlyphGeometry(inner_max=50.0, ring_inner=40.0)


class TestLevelColor:
    def test_darker_for_more_drugs(self):
        assert level_color(1) != level_color(2) != level_color(3)

    def test_beyond_palette_reuses_darkest(self):
        assert level_color(9) == level_color(5)

    def test_invalid_cardinality(self):
        with pytest.raises(ConfigError):
            level_color(0)


class TestLayout:
    def test_sectors_cover_full_circle_uniformly(self, cluster):
        layout = glyph_layout(cluster)
        assert len(layout) == cluster.context_size
        widths = {round(end - start, 9) for _, start, end in layout}
        assert len(widths) == 1
        assert layout[0][1] == 0.0  # starts at 12 o'clock
        assert layout[-1][2] == pytest.approx(2 * 3.141592653589793)

    def test_levels_ascend_then_confidence_descends(self, cluster):
        layout = glyph_layout(cluster)
        cardinalities = [rule.cardinality for rule, _, _ in layout]
        assert cardinalities == sorted(cardinalities)
        for level in set(cardinalities):
            confidences = [
                rule.metrics.confidence
                for rule, _, _ in layout
                if rule.cardinality == level
            ]
            assert confidences == sorted(confidences, reverse=True)


class TestRenderGlyph:
    def test_well_formed_svg(self, cluster):
        root = ET.fromstring(render_glyph(cluster).to_string())
        assert root.tag.endswith("svg")

    def test_sector_count(self, cluster):
        root = ET.fromstring(render_glyph(cluster).to_string())
        paths = [el for el in root if el.tag.endswith("path")]
        nonzero = sum(
            1
            for rule, _, _ in glyph_layout(cluster)
            if rule.metrics.confidence > 0
        )
        assert len(paths) == nonzero

    def test_inner_circle_encodes_target_confidence(self, cluster):
        geometry = GlyphGeometry()
        root = ET.fromstring(render_glyph(cluster, geometry=geometry).to_string())
        circles = [el for el in root if el.tag.endswith("circle")]
        # last circle drawn is the target
        target = circles[-1]
        expected = geometry.inner_radius(cluster.target.metrics.confidence)
        assert float(target.get("r")) == pytest.approx(expected, abs=0.01)


class TestZoomView:
    def test_labels_present(self, cluster, mined_quarter):
        rendered = render_zoom_view(cluster, mined_quarter.catalog).to_string()
        root = ET.fromstring(rendered)
        texts = [el.text for el in root if el.tag.endswith("text")]
        assert any(text and text.startswith("Target:") for text in texts)
        # one label per contextual rule plus the header
        assert len(texts) == cluster.context_size + 1
