"""Tests for the textual report renderers."""

from __future__ import annotations

import pytest

from repro.core.pipeline import RuleSpaceCounts
from repro.core.ranking import RankingMethod
from repro.viz.report import (
    cluster_detail,
    ranking_markdown,
    rule_reduction_table,
    top_k_table,
)


class TestClusterDetail:
    def test_layout(self, mined_quarter):
        cluster = next(c for c in mined_quarter.clusters if c.n_drugs >= 2)
        text = cluster_detail(cluster, mined_quarter.catalog)
        lines = text.splitlines()
        assert lines[0].startswith("R ")
        assert len(lines) == 1 + cluster.context_size
        assert all("conf=" in line for line in lines)

    def test_levels_deepest_first(self, mined_quarter):
        cluster = next(c for c in mined_quarter.clusters if c.n_drugs >= 3)
        text = cluster_detail(cluster, mined_quarter.catalog)
        level_markers = [
            int(line.split()[0][2]) for line in text.splitlines()[1:]
        ]
        assert level_markers == sorted(level_markers, reverse=True)


class TestTopKTable:
    def test_sections_per_method(self, mined_quarter):
        table = mined_quarter.ranking_table(top_k=3)
        text = top_k_table(table, mined_quarter.catalog)
        assert "== Confidence ==" in text
        assert "== Exclusiveness w/ Confidence ==" in text
        assert text.count("1.") >= 4  # one rank-1 row per method

    def test_markdown_shape(self, mined_quarter):
        table = mined_quarter.ranking_table(top_k=3)
        markdown = ranking_markdown(table, mined_quarter.catalog)
        lines = markdown.splitlines()
        assert lines[0].startswith("| Rank |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + 3  # header + divider + 3 rank rows

    def test_markdown_handles_uneven_columns(self, mined_quarter):
        table = {
            RankingMethod.CONFIDENCE: mined_quarter.rank(
                RankingMethod.CONFIDENCE, top_k=3
            ),
            RankingMethod.LIFT: mined_quarter.rank(RankingMethod.LIFT, top_k=1),
        }
        markdown = ranking_markdown(table, mined_quarter.catalog)
        assert len(markdown.splitlines()) == 2 + 3


class TestRuleReductionTable:
    def test_formatting(self):
        counts = {
            "2014Q1": RuleSpaceCounts(1_000_000, 50_000, 900),
            "2014Q2": RuleSpaceCounts(2_000_000, 60_000, 1_100),
        }
        text = rule_reduction_table(counts)
        lines = text.splitlines()
        assert "Quarter" in lines[0]
        assert "1,000,000" in lines[1]
        assert lines[1].startswith("2014Q1")
        assert lines[2].startswith("2014Q2")
