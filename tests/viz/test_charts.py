"""Tests for the grouped bar charts behind Figs 5.1 and 5.2."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.core.pipeline import RuleSpaceCounts
from repro.errors import ConfigError
from repro.viz.charts import render_fig_5_1, render_fig_5_2, render_grouped_bars


def bars_of(doc):
    root = ET.fromstring(doc.to_string())
    return [
        el
        for el in root
        if el.tag.endswith("rect")
        and el.get("fill") not in (None, "#ffffff", "none")
    ]


class TestGroupedBars:
    def test_bar_count(self):
        doc = render_grouped_bars(
            ["a", "b", "c"], {"s1": [1, 2, 3], "s2": [3, 2, 1]}
        )
        # 6 bars + 2 legend swatches
        assert len(bars_of(doc)) == 8

    def test_heights_proportional_on_linear_scale(self):
        doc = render_grouped_bars(["a", "b"], {"s": [50.0, 100.0]})
        bars = [b for b in bars_of(doc)][:2]
        heights = [float(b.get("height")) for b in bars]
        assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)

    def test_log_scale_compresses(self):
        doc = render_grouped_bars(
            ["a", "b"], {"s": [10.0, 1000.0]}, log_scale=True
        )
        bars = bars_of(doc)[:2]
        heights = [float(b.get("height")) for b in bars]
        # log10: 1 decade vs 3 decades → factor 3, not 100.
        assert heights[1] == pytest.approx(3 * heights[0], rel=0.02)

    def test_zero_value_draws_no_bar(self):
        doc = render_grouped_bars(["a", "b"], {"s": [0.0, 5.0]})
        assert len(bars_of(doc)) == 2  # one bar + one legend swatch

    def test_legend_labels_present(self):
        doc = render_grouped_bars(["a"], {"alpha": [1.0], "beta": [2.0]})
        rendered = doc.to_string()
        assert "alpha" in rendered and "beta" in rendered

    def test_percent_ticks(self):
        doc = render_grouped_bars(["a"], {"s": [0.5]}, percent=True)
        assert "50%" in doc.to_string()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            render_grouped_bars(["a", "b"], {"s": [1.0]})

    def test_log_scale_requires_values_at_least_one(self):
        with pytest.raises(ConfigError):
            render_grouped_bars(["a"], {"s": [0.5]}, log_scale=True)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            render_grouped_bars(["a"], {"s": [-1.0]})

    def test_log_and_percent_exclusive(self):
        with pytest.raises(ConfigError):
            render_grouped_bars(["a"], {"s": [1.0]}, log_scale=True, percent=True)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            render_grouped_bars([], {"s": []})
        with pytest.raises(ConfigError):
            render_grouped_bars(["a"], {})


class TestFigureWrappers:
    def test_fig_5_1_three_series_per_quarter(self):
        counts = {
            "2014Q1": RuleSpaceCounts(10_000, 900, 80),
            "2014Q2": RuleSpaceCounts(20_000, 1_100, 90),
        }
        doc = render_fig_5_1(counts)
        # 2 quarters × 3 series + 3 legend swatches
        assert len(bars_of(doc)) == 9
        assert "Total Rules" in doc.to_string()

    def test_fig_5_2_shared_drug_counts_only(self):
        doc = render_fig_5_2({2: 0.7, 3: 0.6, 4: 0.9}, {2: 0.5, 3: 0.4})
        rendered = doc.to_string()
        assert "2 drugs" in rendered and "3 drugs" in rendered
        assert "4 drugs" not in rendered

    def test_fig_5_2_disjoint_rejected(self):
        with pytest.raises(ConfigError):
            render_fig_5_2({2: 0.7}, {3: 0.5})

    def test_fig_5_1_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_fig_5_1({})


class TestLineChart:
    def make(self, **kwargs):
        from repro.viz.charts import render_line_chart

        defaults = dict(
            x_labels=["Q1", "Q2", "Q3"],
            series={"s": [0.1, 0.2, 0.3]},
        )
        defaults.update(kwargs)
        return render_line_chart(**defaults)

    def test_well_formed(self):
        root = ET.fromstring(self.make().to_string())
        assert root.tag.endswith("svg")

    def test_points_and_segments(self):
        doc = self.make()
        root = ET.fromstring(doc.to_string())
        circles = [el for el in root if el.tag.endswith("circle")]
        assert len(circles) == 3  # one marker per value
        # segment lines: gridlines (3) + 2 connecting segments
        lines = [el for el in root if el.tag.endswith("line")]
        assert len(lines) == 5

    def test_none_breaks_the_line(self):
        doc = self.make(series={"s": [0.1, None, 0.3]})
        root = ET.fromstring(doc.to_string())
        circles = [el for el in root if el.tag.endswith("circle")]
        lines = [el for el in root if el.tag.endswith("line")]
        assert len(circles) == 2
        assert len(lines) == 3  # gridlines only, no connecting segment

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            self.make(series={"s": [0.1]})

    def test_all_none_rejected(self):
        with pytest.raises(ConfigError):
            self.make(series={"s": [None, None, None]})


class TestTrendChart:
    def test_renders_from_signal_trends(self, mined_quarter):
        from repro.core.trends import build_trends
        from repro.viz.charts import render_trend_chart

        trends = build_trends({"2014Q1": mined_quarter})
        doc = render_trend_chart(trends, max_series=3)
        assert "Signal trajectories" in doc.to_string()

    def test_empty_rejected(self):
        from repro.viz.charts import render_trend_chart

        with pytest.raises(ConfigError):
            render_trend_chart([])
