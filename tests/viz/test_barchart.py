"""Tests for the MCAC bar-chart rendering (Fig 5.3)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.viz.barchart import render_barchart


@pytest.fixture
def cluster(mined_quarter):
    return next(c for c in mined_quarter.clusters if c.n_drugs >= 2)


def bars_of(rendered: str):
    root = ET.fromstring(rendered)
    rects = [el for el in root if el.tag.endswith("rect")]
    # skip the background rect
    return [r for r in rects if r.get("fill") not in (None, "#ffffff", "none")]


class TestBarchart:
    def test_bar_count_is_target_plus_context(self, cluster):
        bars = bars_of(render_barchart(cluster).to_string())
        assert len(bars) == 1 + cluster.context_size

    def test_target_bar_height_encodes_confidence(self, cluster):
        rendered = render_barchart(cluster, plot_height=100.0)
        bars = bars_of(rendered.to_string())
        target_height = float(bars[0].get("height"))
        assert target_height == pytest.approx(
            100.0 * cluster.target.metrics.confidence, abs=0.01
        )

    def test_labels_with_catalog_use_drug_initials(self, cluster, mined_quarter):
        rendered = render_barchart(cluster, mined_quarter.catalog).to_string()
        root = ET.fromstring(rendered)
        labels = [el.text for el in root if el.tag.endswith("text") and el.text]
        assert "R" in labels  # target bar label

    def test_labels_without_catalog_are_level_indexed(self, cluster):
        rendered = render_barchart(cluster).to_string()
        assert "1.1" in rendered

    def test_axis_gridlines_present(self, cluster):
        rendered = render_barchart(cluster).to_string()
        root = ET.fromstring(rendered)
        lines = [el for el in root if el.tag.endswith("line")]
        assert len(lines) == 3  # 0, 0.5, 1.0

    def test_width_scales_with_context(self, mined_quarter):
        small = next(c for c in mined_quarter.clusters if c.n_drugs == 2)
        large = next(c for c in mined_quarter.clusters if c.n_drugs >= 3)
        assert render_barchart(large).width > render_barchart(small).width
