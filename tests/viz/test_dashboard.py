"""Tests for the static HTML dashboard."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.viz.dashboard import render_dashboard, write_dashboard


class TestDashboard:
    def test_page_structure(self, mined_quarter):
        page = render_dashboard(mined_quarter, top_k=5, detail_k=2)
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<h3>") == 2  # detail sections
        assert "Panoramagram" in page
        assert "<svg" in page

    def test_table_rows_match_top_k(self, mined_quarter):
        page = render_dashboard(mined_quarter, top_k=6, detail_k=0)
        # header row + 6 data rows
        assert page.count("<tr") == 7

    def test_only_the_sorter_script_present(self, mined_quarter):
        # Exactly one script element (the table sorter); all data content
        # is HTML-escaped, so nothing else can smuggle one in.
        page = render_dashboard(mined_quarter, top_k=3, detail_k=1)
        assert page.lower().count("<script") == 1

    def test_ranking_table_is_sortable(self, mined_quarter):
        page = render_dashboard(mined_quarter, top_k=3, detail_k=0)
        assert "table class='sortable'" in page
        assert "localeCompare" in page

    def test_supporting_cases_listed(self, mined_quarter):
        page = render_dashboard(mined_quarter, top_k=3, detail_k=1)
        assert "supporting cases (" in page

    def test_invalid_parameters(self, mined_quarter):
        with pytest.raises(ConfigError):
            render_dashboard(mined_quarter, top_k=0)

    def test_write_to_disk(self, mined_quarter, tmp_path):
        path = write_dashboard(mined_quarter, tmp_path / "dash.html", top_k=4)
        assert path.exists()
        assert path.stat().st_size > 5_000

    def test_severity_highlight_class_used(self, mined_quarter):
        page = render_dashboard(mined_quarter, top_k=20, detail_k=0)
        # With 20 rows over synthetic MedDRA-ish terms, at least one is severe.
        assert "class='severe'" in page
