"""Tests for the glyph panoramagram (Fig 4.2)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.core.ranking import RankingMethod
from repro.errors import ConfigError
from repro.viz.panorama import render_panorama


@pytest.fixture
def ranked(mined_quarter):
    return mined_quarter.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=7)


class TestPanorama:
    def test_well_formed(self, ranked, mined_quarter):
        root = ET.fromstring(render_panorama(ranked, mined_quarter.catalog).to_string())
        assert root.tag.endswith("svg")

    def test_captions_in_rank_order(self, ranked, mined_quarter):
        rendered = render_panorama(ranked, mined_quarter.catalog).to_string()
        positions = [rendered.index(f"#{entry.rank} ") for entry in ranked]
        assert positions == sorted(positions)

    def test_grid_height_grows_with_rows(self, ranked, mined_quarter):
        two_columns = render_panorama(ranked, mined_quarter.catalog, columns=2)
        seven_columns = render_panorama(ranked, mined_quarter.catalog, columns=7)
        assert two_columns.height > seven_columns.height

    def test_empty_input_rejected(self, mined_quarter):
        with pytest.raises(ConfigError):
            render_panorama([], mined_quarter.catalog)

    def test_invalid_columns_rejected(self, ranked, mined_quarter):
        with pytest.raises(ConfigError):
            render_panorama(ranked, mined_quarter.catalog, columns=0)

    def test_long_drug_lists_truncated(self, ranked, mined_quarter):
        rendered = render_panorama(ranked, mined_quarter.catalog).to_string()
        root = ET.fromstring(rendered)
        captions = [el.text for el in root if el.tag.endswith("text") and el.text]
        assert all(len(c) <= 40 for c in captions)
