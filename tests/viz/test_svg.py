"""Tests for the minimal SVG builder."""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.viz.svg import SVGDocument, _fmt, _polar


def parse(doc: SVGDocument) -> ET.Element:
    return ET.fromstring(doc.to_string())


class TestDocument:
    def test_valid_xml(self):
        doc = SVGDocument(100, 50)
        doc.circle(10, 10, 5)
        root = parse(doc)
        assert root.tag.endswith("svg")
        assert root.get("width") == "100"

    def test_invalid_canvas_rejected(self):
        with pytest.raises(ConfigError):
            SVGDocument(0, 10)

    def test_background_rect(self):
        doc = SVGDocument(10, 10, background="#ffffff")
        root = parse(doc)
        rects = [el for el in root if el.tag.endswith("rect")]
        assert rects and rects[0].get("fill") == "#ffffff"

    def test_save_creates_parents(self, tmp_path):
        doc = SVGDocument(10, 10)
        target = doc.save(tmp_path / "nested" / "dir" / "out.svg")
        assert target.exists()
        assert target.read_text().startswith("<svg")


class TestPrimitives:
    def test_text_escapes_content(self):
        doc = SVGDocument(10, 10)
        doc.text(1, 1, "A<B>&C")
        rendered = doc.to_string()
        assert "A&lt;B&gt;&amp;C" in rendered
        parse(doc)  # must stay well-formed

    def test_attribute_quoting(self):
        doc = SVGDocument(10, 10)
        doc.circle(1, 1, 1, fill='he"llo')
        parse(doc)

    def test_line_dash(self):
        doc = SVGDocument(10, 10)
        doc.line(0, 0, 5, 5, dashed=True)
        root = parse(doc)
        line = next(el for el in root if el.tag.endswith("line"))
        assert line.get("stroke-dasharray") == "4 3"


class TestAnnularSector:
    def test_path_generated(self):
        doc = SVGDocument(100, 100)
        doc.annular_sector(50, 50, 10, 20, 0.0, math.pi / 2)
        root = parse(doc)
        path = next(el for el in root if el.tag.endswith("path"))
        d = path.get("d")
        assert d.startswith("M") and "A" in d and d.strip().endswith("Z")

    def test_large_arc_flag(self):
        doc = SVGDocument(100, 100)
        doc.annular_sector(50, 50, 10, 20, 0.0, 1.5 * math.pi)
        d = next(
            el for el in parse(doc) if el.tag.endswith("path")
        ).get("d")
        # large-arc flag 1 appears in both arcs
        assert " 1 1 " in d

    def test_invalid_radii_rejected(self):
        doc = SVGDocument(100, 100)
        with pytest.raises(ConfigError):
            doc.annular_sector(50, 50, 20, 10, 0.0, 1.0)

    def test_invalid_sweep_rejected(self):
        doc = SVGDocument(100, 100)
        with pytest.raises(ConfigError):
            doc.annular_sector(50, 50, 10, 20, 0.0, 0.0)
        with pytest.raises(ConfigError):
            doc.annular_sector(50, 50, 10, 20, 0.0, 2 * math.pi)


class TestHelpers:
    def test_fmt_integers_compact(self):
        assert _fmt(12.0) == "12"
        assert _fmt(12.3456789) == "12.346"

    def test_polar_twelve_oclock(self):
        x, y = _polar(0, 0, 10, 0.0)
        assert (round(x, 6), round(y, 6)) == (0.0, -10.0)

    def test_polar_three_oclock(self):
        x, y = _polar(0, 0, 10, math.pi / 2)
        assert (round(x, 6), round(y, 6)) == (10.0, 0.0)
