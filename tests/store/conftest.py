"""Fixtures for the durable-store suite."""

from __future__ import annotations

import pytest

from repro.core.export import export_result


@pytest.fixture(scope="module")
def payload(mined_quarter) -> dict:
    """One run snapshot payload in the export wire format."""
    return export_result(mined_quarter)
