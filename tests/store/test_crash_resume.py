"""SIGKILL-and-resume harness: the durability acceptance criterion.

Each case runs ``mediar watch --store sqlite:///…`` as a real
subprocess with a crash hook armed (the CLI SIGKILLs itself at a chosen
batch, either *before* the checkpoint commit — losing that batch's work
— or *after* it — dying between batches), then reruns the same command
and asserts the final JSON export is byte-identical to an uninterrupted
run's. The grid crosses quarters (different streams), batch schedules,
kill positions and kill modes.

Set ``DURABILITY_ARTIFACT_DIR`` to persist the SQLite stores outside
pytest's tmp dir — the CI durability-smoke job points it at a directory
it uploads when the job fails.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])
SCALE = "0.004"


def _work_dir(tmp_path: Path, label: str) -> Path:
    root = os.environ.get("DURABILITY_ARTIFACT_DIR")
    directory = (Path(root) if root else tmp_path) / label
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def run_watch(
    directory: Path,
    quarter: str,
    batches: int,
    *,
    out: Path | None = None,
    kill: tuple[str, int] | None = None,
) -> subprocess.CompletedProcess:
    database = directory / "store.db"
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "watch",
        "--synthetic",
        quarter,
        "--scale",
        SCALE,
        "--batches",
        str(batches),
        "--store",
        f"sqlite://{database}",
        "--run",
        quarter,
    ]
    if out is not None:
        command += ["--out", str(out)]
    env = {**os.environ, "PYTHONPATH": SRC_ROOT}
    env.pop("MEDIAR_WATCH_KILL_BEFORE_CHECKPOINT", None)
    env.pop("MEDIAR_WATCH_KILL_AFTER_CHECKPOINT", None)
    if kill is not None:
        mode, index = kill
        env[f"MEDIAR_WATCH_KILL_{mode}_CHECKPOINT"] = str(index)
    return subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=300
    )


_REFERENCE_CACHE: dict[tuple[str, int], bytes] = {}


def reference_bytes(tmp_path: Path, quarter: str, batches: int) -> bytes:
    key = (quarter, batches)
    if key not in _REFERENCE_CACHE:
        directory = _work_dir(tmp_path, f"ref-{quarter}-{batches}")
        out = directory / "export.json"
        completed = run_watch(directory, quarter, batches, out=out)
        assert completed.returncode == 0, completed.stderr
        _REFERENCE_CACHE[key] = out.read_bytes()
    return _REFERENCE_CACHE[key]


class TestCrashResume:
    @pytest.mark.parametrize("mode", ["BEFORE", "AFTER"])
    @pytest.mark.parametrize("kill_at", [0, 2])
    @pytest.mark.parametrize(
        "quarter,batches", [("2014Q1", 4), ("2014Q2", 5)]
    )
    def test_killed_watch_resumes_byte_identical(
        self, tmp_path, quarter, batches, kill_at, mode
    ):
        expected = reference_bytes(tmp_path, quarter, batches)
        label = f"{quarter}-{batches}-{mode}-{kill_at}"
        directory = _work_dir(tmp_path, label)
        killed = run_watch(
            directory, quarter, batches, kill=(mode, kill_at)
        )
        # SIGKILL: no exit handler ran, no graceful teardown.
        assert killed.returncode == -9, (
            killed.returncode,
            killed.stdout,
            killed.stderr,
        )
        out = directory / "export.json"
        resumed = run_watch(directory, quarter, batches, out=out)
        assert resumed.returncode == 0, resumed.stderr
        done = kill_at + 1 if mode == "AFTER" else kill_at
        if done:
            assert (
                f"resumed run {quarter!r} from its checkpoint: "
                f"{done}/{batches}" in resumed.stdout
            )
        else:
            # Killed inside the very first batch: nothing was committed,
            # so the rerun starts from scratch.
            assert "resumed" not in resumed.stdout
        assert out.read_bytes() == expected, label

    def test_completed_watch_reruns_as_republish(self, tmp_path):
        """A second run over a finished stream re-publishes, unchanged."""
        directory = _work_dir(tmp_path, "republish")
        first_out = directory / "first.json"
        second_out = directory / "second.json"
        first = run_watch(directory, "2014Q1", 3, out=first_out)
        assert first.returncode == 0, first.stderr
        second = run_watch(directory, "2014Q1", 3, out=second_out)
        assert second.returncode == 0, second.stderr
        assert "resumed run '2014Q1' from its checkpoint: 3/3" in second.stdout
        assert first_out.read_bytes() == second_out.read_bytes()


class TestServeStoreErrors:
    """Satellite: serve --load on a bad store is a one-line nonzero exit."""

    def _serve(self, target) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--load", str(target)],
            env={**os.environ, "PYTHONPATH": SRC_ROOT},
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_empty_directory(self, tmp_path):
        completed = self._serve(tmp_path)
        assert completed.returncode == 2
        error_lines = completed.stderr.strip().splitlines()
        assert len(error_lines) == 1
        assert error_lines[0].startswith("error: no run snapshots")

    def test_corrupt_snapshot(self, tmp_path):
        (tmp_path / "broken.json").write_text("{nope", encoding="utf-8")
        completed = self._serve(tmp_path)
        assert completed.returncode == 2
        error_lines = completed.stderr.strip().splitlines()
        assert len(error_lines) == 1
        assert "not valid JSON" in error_lines[0]
