"""The backend contract: URI routing, catalogs, retention, atomicity."""

from __future__ import annotations

import json

import pytest

from repro.errors import NotFoundError, StoreError
from repro.serve import QueryEngine, ResultStore
from repro.store import (
    DirectoryBackend,
    SQLiteBackend,
    open_backend,
    validate_run_name,
)


class TestOpenBackend:
    def test_bare_path_is_directory(self, tmp_path):
        backend = open_backend(tmp_path)
        assert isinstance(backend, DirectoryBackend)
        assert backend.uri == f"dir://{tmp_path}"

    def test_dir_uri(self, tmp_path):
        backend = open_backend(f"dir://{tmp_path}")
        assert isinstance(backend, DirectoryBackend)
        assert backend.directory == tmp_path

    def test_sqlite_uri(self, tmp_path):
        with open_backend(f"sqlite://{tmp_path}/runs.db") as backend:
            assert isinstance(backend, SQLiteBackend)
            assert backend.supports_checkpoints

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError, match="unknown store scheme"):
            open_backend("postgres://db/runs")

    def test_empty_path_rejected(self):
        with pytest.raises(StoreError, match="empty path"):
            open_backend("sqlite://")

    def test_run_name_grammar(self):
        assert validate_run_name("2014Q1.v2") == "2014Q1.v2"
        for bad in ("", "../escape", "a b", ".hidden"):
            with pytest.raises(StoreError, match="run names"):
                validate_run_name(bad)


class TestDirectoryBackend:
    def test_save_is_atomic_and_clean(self, tmp_path, payload):
        backend = DirectoryBackend(tmp_path)
        record = backend.save_run("q1", payload)
        assert record.version == 1
        assert record.location == tmp_path / "q1.json"
        # No in-flight temp files survive a completed save.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["q1.json"]
        assert backend.load_run("q1") == payload

    def test_missing_run_is_one_line_error(self, tmp_path):
        with pytest.raises(StoreError, match="no run named 'q9'"):
            DirectoryBackend(tmp_path).load_run("q9")

    def test_corrupt_file_is_diagnosed(self, tmp_path):
        (tmp_path / "bad.json").write_text("{truncated", encoding="utf-8")
        backend = DirectoryBackend(tmp_path)
        with pytest.raises(StoreError, match="not valid JSON"):
            backend.load_run("bad")
        # The listing still surfaces it, marked unloadable.
        [record] = backend.list_runs()
        assert record.name == "bad" and record.compacted

    def test_version_pin_rejected(self, tmp_path, payload):
        backend = DirectoryBackend(tmp_path)
        backend.save_run("q1", payload)
        with pytest.raises(StoreError, match="latest version"):
            backend.load_run("q1", version=2)

    def test_retention_is_noop(self, tmp_path, payload):
        backend = DirectoryBackend(tmp_path)
        backend.save_run("q1", payload)
        assert backend.prune(keep=1) == 0
        assert backend.compact() == 0
        with pytest.raises(StoreError, match="keep must be >= 1"):
            backend.prune(keep=0)

    def test_checkpoints_unsupported(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        with pytest.raises(StoreError, match="sqlite"):
            backend.load_checkpoint("q1")
        with pytest.raises(StoreError, match="sqlite"):
            backend.save_checkpoint("q1", {}, n_batches=1, fingerprint="x")


class TestSQLiteBackend:
    @pytest.fixture
    def backend(self, tmp_path):
        with SQLiteBackend(tmp_path / "runs.db") as backend:
            yield backend

    def test_versions_chain_via_supersedes(self, backend, payload):
        first = backend.save_run("q1", payload)
        second = backend.save_run("q1", payload)
        assert (first.version, first.supersedes) == (1, None)
        assert (second.version, second.supersedes) == (2, 1)
        assert backend.load_run("q1") == payload
        assert backend.load_run("q1", version=1) == payload

    def test_missing_run_and_version(self, backend, payload):
        backend.save_run("q1", payload)
        with pytest.raises(StoreError, match="no run named 'q9'"):
            backend.load_run("q9")
        with pytest.raises(StoreError, match="version 7"):
            backend.load_run("q1", version=7)

    def test_prune_applies_retention_per_run(self, backend, payload):
        for _ in range(4):
            backend.save_run("q1", payload)
        backend.save_run("q2", payload)
        assert backend.prune(keep=2) == 2
        versions = [r.version for r in backend.list_runs() if r.name == "q1"]
        assert versions == [3, 4]
        assert backend.load_run("q2") == payload

    def test_compact_drops_superseded_bodies_keeps_rows(
        self, backend, payload
    ):
        backend.save_run("q1", payload)
        backend.save_run("q1", payload)
        assert backend.compact() == 1
        assert backend.compact() == 0  # idempotent
        rows = backend.list_runs()
        assert [(r.version, r.compacted) for r in rows] == [
            (1, True),
            (2, False),
        ]
        assert backend.load_run("q1") == payload  # latest untouched
        with pytest.raises(StoreError, match="compacted"):
            backend.load_run("q1", version=1)

    def test_run_names_excludes_compacted_only(self, backend, payload):
        backend.save_run("q1", payload)
        backend.save_run("q1", payload)
        backend.compact()
        assert backend.run_names() == ["q1"]

    def test_invalid_name_rejected_before_write(self, backend, payload):
        with pytest.raises(StoreError, match="run names"):
            backend.save_run("../escape", payload)

    def test_path_is_directory_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="directory"):
            SQLiteBackend(tmp_path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-db.db"
        path.write_bytes(b"this is not a sqlite file" * 64)
        with pytest.raises(StoreError, match="not a usable SQLite store"):
            SQLiteBackend(path)

    def test_checkpoint_roundtrip_and_clear(self, backend):
        from repro.store import JournalEntry

        state = {"batch_index": 2, "payload": [1, 2, 3]}
        backend.save_checkpoint(
            "q1",
            state,
            n_batches=2,
            fingerprint="f" * 64,
            journal=[JournalEntry(0, ["C1"]), JournalEntry(1, ["C2", "C3"])],
        )
        checkpoint = backend.load_checkpoint("q1")
        assert checkpoint.state == state
        assert checkpoint.n_batches == 2
        assert backend.journal_case_ids("q1", 1) == ["C2", "C3"]
        assert backend.journal_case_ids("q1", 5) is None
        backend.clear_checkpoint("q1")
        assert backend.load_checkpoint("q1") is None
        assert backend.journal_case_ids("q1", 0) is None


class TestResultStoreIntegration:
    """ResultStore.save/load over both backends serve identical answers."""

    def test_sqlite_roundtrip_preserves_payloads(
        self, tmp_path, snapshot_store
    ):
        uri = f"sqlite://{tmp_path}/runs.db"
        locations = snapshot_store.save(uri)
        assert all(str(loc).startswith("sqlite://") for loc in locations)
        reloaded = ResultStore.load(uri)
        assert reloaded.names() == snapshot_store.names()
        for name in reloaded.names():
            assert (
                reloaded.get(name).payload == snapshot_store.get(name).payload
            )

    def test_backends_serve_identical_responses(
        self, tmp_path, snapshot_store
    ):
        snapshot_store.save(tmp_path / "dirstore")
        snapshot_store.save(f"sqlite://{tmp_path}/runs.db")
        from_dir = QueryEngine(ResultStore.load(tmp_path / "dirstore"))
        from_db = QueryEngine(ResultStore.load(f"sqlite://{tmp_path}/runs.db"))
        name = snapshot_store.names()[0]
        for query in (
            lambda e: e.runs(),
            lambda e: e.clusters(run=name, limit="5"),
            lambda e: e.associations(run=name),
        ):
            assert query(from_dir) == query(from_db)

    def test_directory_save_returns_paths(self, tmp_path, snapshot_store):
        paths = snapshot_store.save(tmp_path / "runs")
        assert [p.name for p in paths] == [
            f"{name}.json" for name in snapshot_store.names()
        ]

    def test_load_empty_sqlite_store_is_not_found(self, tmp_path):
        with pytest.raises(NotFoundError, match="no run snapshots"):
            ResultStore.load(f"sqlite://{tmp_path}/empty.db")

    def test_load_corrupt_directory_is_store_error(self, tmp_path):
        (tmp_path / "broken.json").write_text("[oops", encoding="utf-8")
        with pytest.raises(StoreError, match="not valid JSON"):
            ResultStore.load(tmp_path)

    def test_concurrent_save_leaves_valid_file(self, tmp_path, payload):
        """Readers of a half-saved run see old bytes or new, never torn."""
        backend = DirectoryBackend(tmp_path)
        backend.save_run("q1", {**payload, "marker": "old"})
        backend.save_run("q1", {**payload, "marker": "new"})
        text = (tmp_path / "q1.json").read_text(encoding="utf-8")
        assert json.loads(text)["marker"] == "new"


@pytest.fixture(scope="module")
def snapshot_store(payload) -> ResultStore:
    store = ResultStore()
    store.add_export("2014T1", payload)
    return store
