"""Checkpoint/restore byte-identity and resume guards (in process).

The differential contract: a monitor checkpointed into SQLite after any
prefix of a batch schedule, restored from the stored JSON, and fed the
remaining batches must export byte-for-byte what an uninterrupted
monitor exports. The grid runs both clean modes over the same follow-up
laden streams the incremental harness uses, cutting at every batch
boundary.
"""

from __future__ import annotations

import pytest

from repro.core.incremental import SurveillanceMonitor
from repro.core.pipeline import MarasConfig
from repro.errors import StoreError
from repro.store import (
    CHECKPOINT_VERSION,
    SQLiteBackend,
    checkpoint_monitor,
    config_fingerprint,
    restore_monitor,
    verify_journal,
)
from repro.store.backend import JournalEntry
from tests.incremental.streams import export_bytes, make_stream, split_schedule

MIN_SUPPORT = 3
SCHEDULES = {
    "coarse": (0.5, 1.0),
    "fine": (0.2, 0.35, 0.5, 0.65, 0.8, 1.0),
}


def _config(clean: bool) -> MarasConfig:
    return MarasConfig(min_support=MIN_SUPPORT, clean=clean, incremental=True)


def _run_through_store(backend, config, batches, cut):
    """Ingest ``cut`` batches, checkpoint, restore, finish the stream."""
    fingerprint = config_fingerprint(config)
    with SurveillanceMonitor(config) as monitor:
        for index in range(cut):
            monitor.ingest(batches[index])
            checkpoint_monitor(
                backend,
                "run",
                monitor,
                fingerprint=fingerprint,
                journal=[
                    JournalEntry(
                        index, [r.case_id for r in batches[index]]
                    )
                ],
            )
    resumed = restore_monitor(backend, "run", config)
    assert resumed is not None
    assert resumed.n_batches == cut
    verify_journal(backend, "run", batches, cut)
    with resumed:
        for batch in batches[cut:]:
            resumed.ingest(batch)
        return export_bytes(resumed.result)


class TestByteIdentity:
    @pytest.mark.parametrize("clean", [False, True], ids=["noclean", "clean"])
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [11, 47])
    def test_resumed_stream_matches_uninterrupted(
        self, tmp_path, seed, schedule, clean
    ):
        stream = make_stream(seed)
        batches = split_schedule(stream, SCHEDULES[schedule])
        config = _config(clean)
        with SurveillanceMonitor(config) as reference:
            for batch in batches:
                reference.ingest(batch)
            expected = export_bytes(reference.result)
        for cut in range(1, len(batches)):
            with SQLiteBackend(tmp_path / f"cut{cut}.db") as backend:
                assert (
                    _run_through_store(backend, config, batches, cut)
                    == expected
                ), f"seed={seed} schedule={schedule} clean={clean} cut={cut}"


class TestResumeGuards:
    @pytest.fixture
    def backend(self, tmp_path):
        with SQLiteBackend(tmp_path / "guards.db") as backend:
            yield backend

    @pytest.fixture
    def checkpointed(self, backend):
        config = _config(False)
        batches = split_schedule(make_stream(11), SCHEDULES["coarse"])
        with SurveillanceMonitor(config) as monitor:
            monitor.ingest(batches[0])
            checkpoint_monitor(
                backend,
                "run",
                monitor,
                fingerprint=config_fingerprint(config),
                journal=[
                    JournalEntry(0, [r.case_id for r in batches[0]])
                ],
            )
        return config, batches

    def test_absent_checkpoint_restores_none(self, backend):
        assert restore_monitor(backend, "run", _config(False)) is None

    def test_config_drift_is_refused(self, backend, checkpointed):
        drifted = MarasConfig(
            min_support=MIN_SUPPORT + 1, clean=False, incremental=True
        )
        with pytest.raises(StoreError, match="different\\s+mining config"):
            restore_monitor(backend, "run", drifted)

    def test_worker_count_is_not_config_drift(self, checkpointed):
        config, _ = checkpointed
        parallel = MarasConfig(
            min_support=MIN_SUPPORT,
            clean=False,
            incremental=True,
            n_workers=4,
        )
        assert config_fingerprint(parallel) == config_fingerprint(config)

    def test_clean_mode_mismatch_is_refused(self, backend, checkpointed):
        # clean is an output-affecting field, so the fingerprint guard
        # catches the mismatch before the engine even loads.
        with pytest.raises(StoreError, match="different\\s+mining config"):
            restore_monitor(backend, "run", _config(True))

    def test_engine_refuses_opposite_clean_mode(self, checkpointed):
        from repro.incremental.engine import IncrementalEngine

        config, batches = checkpointed
        with SurveillanceMonitor(config) as monitor:
            monitor.ingest(batches[0])
            engine_state = monitor.checkpoint_state()["engine"]
        with pytest.raises(StoreError, match="refusing to mix"):
            IncrementalEngine.from_state(_config(True), engine_state)

    def test_layout_version_is_checked(self, backend, checkpointed):
        config, _ = checkpointed
        checkpoint = backend.load_checkpoint("run")
        backend.save_checkpoint(
            "run",
            {**checkpoint.state, "version": CHECKPOINT_VERSION + 1},
            n_batches=checkpoint.n_batches,
            fingerprint=checkpoint.fingerprint,
        )
        with pytest.raises(StoreError, match="layout version"):
            restore_monitor(backend, "run", config)

    def test_changed_input_fails_journal_verification(
        self, backend, checkpointed
    ):
        _, batches = checkpointed
        drifted = [list(batches[0][:-1])] + [list(b) for b in batches[1:]]
        with pytest.raises(StoreError, match="does not match the journal"):
            verify_journal(backend, "run", drifted, 1)

    def test_missing_journal_row_is_inconsistent(self, backend, checkpointed):
        _, batches = checkpointed
        with pytest.raises(StoreError, match="no journal row"):
            verify_journal(backend, "run", batches, 2)

    def test_full_rescan_monitor_cannot_checkpoint(self):
        config = MarasConfig(
            min_support=MIN_SUPPORT, clean=True, incremental=False
        )
        batches = split_schedule(make_stream(11), SCHEDULES["coarse"])
        with SurveillanceMonitor(config) as monitor:
            monitor.ingest(batches[0])
            with pytest.raises(StoreError, match="incremental"):
                monitor.checkpoint_state()

    def test_engine_cannot_checkpoint_before_first_batch(self):
        from repro.incremental.engine import IncrementalEngine

        with IncrementalEngine(_config(False)) as engine:
            with pytest.raises(StoreError, match="before the first batch"):
                engine.checkpoint_state()
