"""Smoke tests: the example scripts must actually run.

Each example is executed in-process via :func:`runpy.run_path` with
``__name__ == "__main__"`` so its ``main()`` fires. Only the faster
examples run here (the full set is exercised manually / in CI-style
runs); each asserts on a fragment of its expected stdout so a silently
broken example cannot pass.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamplesRun:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "top 5 by exclusiveness_confidence:" in out
        assert "winning cluster in detail:" in out
        assert "supported by" in out

    def test_parse_real_faers(self, capsys):
        out = run_example("parse_real_faers.py", capsys)
        assert "parsed" in out and "EXP reports" in out
        assert "drug names corrected" in out
        assert "top 5 interactions" in out

    def test_glyph_gallery_writes_svgs(self, capsys):
        out = run_example("glyph_gallery.py", capsys)
        assert "glyph_top1.svg" in out
        assert "panorama.svg" in out
        assert "stimuli" in out
        for line in out.splitlines():
            if line.startswith("wrote "):
                path = Path(line.split(" ")[1])
                assert path.exists(), path

    @pytest.mark.parametrize(
        "name",
        [
            "faers_quarterly_analysis.py",
            "case_study_interactions.py",
            "signal_methods_comparison.py",
            "surveillance_stream.py",
            "evaluator_toolkit.py",
        ],
    )
    def test_other_examples_importable(self, name):
        """The slower examples at least parse and import cleanly."""
        source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
        compile(source, name, "exec")
