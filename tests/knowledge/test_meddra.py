"""Tests for the MedDRA-style SOC hierarchy."""

from __future__ import annotations

from repro.faers.vocab import ADR_VOCABULARY, adr_universe
from repro.knowledge.meddra import (
    ALL_SOCS,
    MedDRAHierarchy,
    SOC_GENERAL,
    SOC_MSK,
    SOC_RENAL,
    SOC_RESPIRATORY,
    SOC_VASCULAR,
    default_hierarchy,
)


class TestCuratedAssignments:
    def test_paper_terms(self):
        hierarchy = default_hierarchy()
        assert hierarchy.soc_of("ACUTE RENAL FAILURE") == SOC_RENAL
        assert hierarchy.soc_of("HAEMORRHAGE") == SOC_VASCULAR
        assert hierarchy.soc_of("ASTHMA") == SOC_RESPIRATORY
        assert hierarchy.soc_of("OSTEONECROSIS OF JAW") == SOC_MSK

    def test_every_named_term_has_a_soc(self):
        hierarchy = default_hierarchy()
        for term in ADR_VOCABULARY:
            assert hierarchy.soc_of(term) in ALL_SOCS

    def test_case_insensitive(self):
        assert default_hierarchy().soc_of("asthma") == SOC_RESPIRATORY


class TestKeywordInference:
    def test_synthetic_universe_mostly_classified(self):
        hierarchy = default_hierarchy()
        terms = adr_universe(400)
        classified = sum(
            1 for term in terms if hierarchy.soc_of(term) != SOC_GENERAL
        )
        assert classified / len(terms) > 0.9

    def test_site_keywords(self):
        hierarchy = default_hierarchy()
        assert hierarchy.soc_of("ACUTE HEPATIC NECROSIS") == (
            "Hepatobiliary disorders"
        )
        assert hierarchy.soc_of("TRANSIENT CEREBRAL OEDEMA") == (
            "Nervous system disorders"
        )

    def test_unknown_falls_back_to_general(self):
        assert default_hierarchy().soc_of("FEELING JAZZY") == SOC_GENERAL


class TestGrouping:
    def test_socs_of_cluster(self):
        hierarchy = default_hierarchy()
        socs = hierarchy.socs_of(["ACUTE RENAL FAILURE", "HAEMORRHAGE"])
        assert socs == {SOC_RENAL, SOC_VASCULAR}

    def test_group_by_soc_sorted(self):
        hierarchy = default_hierarchy()
        grouped = hierarchy.group_by_soc(
            ["HAEMORRHAGE", "ACUTE RENAL FAILURE", "PAIN"]
        )
        assert list(grouped) == sorted(grouped)
        assert grouped[SOC_RENAL] == ["ACUTE RENAL FAILURE"]

    def test_custom_curation(self):
        hierarchy = MedDRAHierarchy({"PAIN": SOC_RENAL})
        assert hierarchy.soc_of("PAIN") == SOC_RENAL
