"""Tests for the ADR severity index."""

from __future__ import annotations

from repro.knowledge.severity import Severity, SeverityIndex, default_severity_index


class TestSeverityOrdering:
    def test_ordered_by_urgency(self):
        assert Severity.MILD < Severity.MODERATE < Severity.SEVERE
        assert Severity.SEVERE < Severity.LIFE_THREATENING


class TestCuratedLookups:
    def test_curated_terms(self):
        index = default_severity_index()
        assert index.severity_of("ACUTE RENAL FAILURE") is Severity.LIFE_THREATENING
        assert index.severity_of("OSTEONECROSIS OF JAW") is Severity.SEVERE
        assert index.severity_of("PAIN") is Severity.MILD

    def test_lookup_is_case_insensitive(self):
        index = default_severity_index()
        assert index.severity_of("haemorrhage") is Severity.LIFE_THREATENING


class TestKeywordHeuristics:
    def test_failure_keyword(self):
        index = default_severity_index()
        assert index.severity_of("CHRONIC HEPATIC INSUFFICIENCY") is Severity.SEVERE

    def test_life_threatening_keyword(self):
        index = default_severity_index()
        assert index.severity_of("SPLENIC RUPTURE") is Severity.LIFE_THREATENING

    def test_moderate_keyword(self):
        index = default_severity_index()
        assert index.severity_of("TRANSIENT GASTRIC OEDEMA") is Severity.MODERATE

    def test_unmatched_term_defaults_to_mild(self):
        index = default_severity_index()
        assert index.severity_of("FEELING JAZZY") is Severity.MILD


class TestAggregates:
    def test_max_severity(self):
        index = default_severity_index()
        assert (
            index.max_severity(["PAIN", "HAEMORRHAGE"])
            is Severity.LIFE_THREATENING
        )

    def test_max_severity_empty(self):
        assert default_severity_index().max_severity([]) is Severity.MILD

    def test_is_severe_filter(self):
        index = default_severity_index()
        assert index.is_severe(["OSTEONECROSIS OF JAW"])
        assert not index.is_severe(["PAIN", "ANXIETY"])

    def test_custom_curation_overrides(self):
        index = SeverityIndex({"PAIN": Severity.LIFE_THREATENING})
        assert index.severity_of("PAIN") is Severity.LIFE_THREATENING
