"""Tests for the DDI reference (Drugs.com/DrugBank stand-in)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.knowledge.ddi_reference import (
    DDIReference,
    KnownInteraction,
    default_reference,
)


class TestKnownInteraction:
    def test_requires_two_drugs(self):
        with pytest.raises(ConfigError):
            KnownInteraction(frozenset({"A"}), frozenset({"X"}), source="s")

    def test_requires_adrs(self):
        with pytest.raises(ConfigError):
            KnownInteraction(frozenset({"A", "B"}), frozenset(), source="s")


class TestDefaultReference:
    def test_papers_case_studies_present(self):
        reference = default_reference()
        assert reference.lookup({"IBUPROFEN", "METAMIZOLE"})
        assert reference.lookup({"METHOTREXATE", "PROGRAF"})
        assert reference.lookup({"NEXIUM", "PREVACID"})
        assert reference.lookup({"ASPIRIN", "WARFARIN"})

    def test_sources_recorded(self):
        reference = default_reference()
        (interaction,) = reference.lookup({"IBUPROFEN", "METAMIZOLE"})
        assert "WHO" in interaction.source


class TestLookupAndClassify:
    def test_exact_lookup_only(self):
        reference = default_reference()
        assert reference.lookup({"ASPIRIN"}) == []
        assert reference.lookup({"ASPIRIN", "WARFARIN", "NEXIUM"}) == []

    def test_is_known_combination_covers_subsets(self):
        reference = default_reference()
        assert reference.is_known_combination({"ASPIRIN", "WARFARIN", "NEXIUM"})
        assert not reference.is_known_combination({"ASPIRIN", "NEXIUM"})

    def test_classify_known(self):
        reference = default_reference()
        assert (
            reference.classify({"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"})
            == "known"
        )

    def test_classify_known_combination_new_adr(self):
        reference = default_reference()
        assert (
            reference.classify({"ASPIRIN", "WARFARIN"}, {"PAIN"})
            == "known-combination-new-adr"
        )

    def test_classify_unknown(self):
        reference = default_reference()
        assert reference.classify({"TUMS", "AMBIEN"}, {"PAIN"}) == "unknown"

    def test_classify_superset_combination_counts_as_known(self):
        reference = default_reference()
        result = reference.classify(
            {"ASPIRIN", "WARFARIN", "TUMS"}, {"HAEMORRHAGE"}
        )
        assert result == "known"

    def test_merged_with(self):
        reference = default_reference()
        extra = KnownInteraction(
            frozenset({"TUMS", "AMBIEN"}), frozenset({"PAIN"}), source="unit test"
        )
        merged = reference.merged_with([extra])
        assert len(merged) == len(reference) + 1
        assert merged.lookup({"TUMS", "AMBIEN"})
        # original untouched
        assert not reference.lookup({"TUMS", "AMBIEN"})

    def test_iteration_and_len(self):
        reference = default_reference()
        assert len(list(reference)) == len(reference)
