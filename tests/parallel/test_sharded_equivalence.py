"""Differential harness: sharded mining must equal the single-process run.

The entire value of :mod:`repro.parallel` rests on one claim — that
``MarasConfig(n_workers=N)`` changes wall-clock only, never output.
This harness makes the claim enforceable: over a seed grid of
two-quarter synthetic datasets × support thresholds × worker counts ×
both shard strategies, the sharded pipeline's closed itemsets,
clusters, stable ids, exclusiveness scores, and full JSON export must
be **byte-identical** to the ``n_workers=1`` run (the same pattern PR 2
used for bitset-vs-set equivalence).
"""

from __future__ import annotations

import json

import pytest

from repro.core.export import export_result
from repro.core.pipeline import Maras, MarasConfig
from repro.core.ranking import RankingMethod
from repro.faers import ReportDataset, SyntheticConfig, SyntheticFAERSGenerator
from repro.mining.fpclose import fpclose
from repro.mining.transactions import canonical_itemset_order, resolve_min_support
from repro.parallel import fpclose_sharded, plan_shards

SEED_GRID = (11, 47, 2014)
SUPPORTS = (3, 5)


def two_quarter_dataset(seed: int) -> ReportDataset:
    """Q1 + Q2 reports in one dataset; case ids are quarter-prefixed so
    concatenation never collides, and the quarter strategy gets two
    genuine shards."""
    reports = []
    for quarter in ("2014Q1", "2014Q2"):
        config = SyntheticConfig(
            n_reports=300,
            n_drugs=100,
            n_adrs=30,
            seed=seed,
            quarter=quarter,
        )
        reports.extend(SyntheticFAERSGenerator(config).generate())
    return ReportDataset(reports)


@pytest.fixture(scope="module", params=SEED_GRID)
def dataset(request) -> ReportDataset:
    return two_quarter_dataset(request.param)


@pytest.fixture(scope="module")
def baselines(dataset):
    """The single-process truth, one per support threshold."""
    return {
        support: Maras(
            MarasConfig(min_support=support, clean=False, n_workers=1)
        ).run(dataset)
        for support in SUPPORTS
    }


def export_bytes(result) -> bytes:
    return json.dumps(
        export_result(result), sort_keys=True, separators=(",", ":")
    ).encode()


class TestMinerEquivalence:
    @pytest.mark.parametrize("min_support", SUPPORTS)
    @pytest.mark.parametrize("strategy", ["hash", "quarter"])
    def test_sharded_closed_sets_match_fpclose(
        self, dataset, min_support, strategy
    ):
        database = dataset.encode().database
        threshold = resolve_min_support(min_support, len(database))
        single = canonical_itemset_order(
            fpclose(database, threshold, max_len=8)
        )
        sharded = fpclose_sharded(
            database,
            threshold,
            max_len=8,
            n_workers=2,
            plan=plan_shards(dataset, 2, strategy),
        )
        assert sharded == single


class TestPipelineEquivalence:
    @pytest.mark.parametrize("min_support", SUPPORTS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["hash", "quarter"])
    def test_export_is_byte_identical(
        self, dataset, baselines, min_support, n_workers, strategy
    ):
        baseline = baselines[min_support]
        sharded = Maras(
            MarasConfig(
                min_support=min_support,
                clean=False,
                n_workers=n_workers,
                shard_strategy=strategy,
            )
        ).run(dataset)
        assert export_bytes(sharded) == export_bytes(baseline)

    def test_clusters_ids_and_scores_match(self, dataset, baselines):
        baseline = baselines[SUPPORTS[0]]
        sharded = Maras(
            MarasConfig(
                min_support=SUPPORTS[0], clean=False, n_workers=4
            )
        ).run(dataset)
        catalog = baseline.catalog
        assert [c.stable_id(catalog) for c in sharded.clusters] == [
            c.stable_id(catalog) for c in baseline.clusters
        ]
        method = RankingMethod.EXCLUSIVENESS_CONFIDENCE
        assert [
            (entry.rank, entry.score) for entry in sharded.rank(method)
        ] == [(entry.rank, entry.score) for entry in baseline.rank(method)]

    def test_cleaning_path_matches_too(self, dataset):
        # clean=True exercises the raw-rows entry: cleaning stays a
        # global parent-side stage, so sharding must still not perturb it.
        reports = list(dataset.reports)
        base = Maras(MarasConfig(min_support=3, clean=True)).run(reports)
        sharded = Maras(
            MarasConfig(min_support=3, clean=True, n_workers=2)
        ).run(reports)
        assert export_bytes(sharded) == export_bytes(base)


class TestSurveillanceEquivalence:
    def test_monitor_batches_match_single_process(self, dataset):
        from repro.core.incremental import SurveillanceMonitor

        reports = list(dataset.reports)
        batches = [reports[:200], reports[200:420], reports[420:]]
        serial = SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False, n_workers=1)
        )
        parallel = SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False, n_workers=2)
        )
        for batch in batches:
            serial_delta = serial.ingest(batch)
            parallel_delta = parallel.ingest(batch)
            assert parallel_delta.newly_surfaced == serial_delta.newly_surfaced
            assert parallel_delta.dropped == serial_delta.dropped
            assert parallel_delta.risers == serial_delta.risers
        assert export_bytes(parallel.result) == export_bytes(serial.result)
