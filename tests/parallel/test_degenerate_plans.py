"""Degenerate shard plans through the full merge path.

The exactness contract in :mod:`repro.parallel.merge` is stated over
*any* covering disjoint partition — not just the balanced ones
:func:`~repro.parallel.sharding.plan_shards` produces. These tests push
the pathological corners through :func:`fpclose_sharded` and require
byte-identity with the single-process miner every time: explicitly
empty shards, one-row shards (local threshold forced to 1, so a shard's
"locally frequent" output is every subset of its row), all-duplicate
rows, more shards than transactions, and the delta (``touched_mask``)
contract under sharding. A final test forces the unfused leaf+pair
tree rounds that a 1-CPU box would normally coalesce away.
"""

from __future__ import annotations

import pytest

from repro.mining.fpclose import fpclose
from repro.mining.transactions import (
    MiningCatalog,
    TransactionDatabase,
    canonical_itemset_order,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel.miner import fpclose_sharded
from repro.parallel.sharding import round_robin_shards

ROWS = (
    (0, 1, 2),
    (0, 1),
    (1, 2, 3),
    (0, 2),
    (1, 3),
    (0, 1, 2, 3),
    (2, 3),
    (0,),
    (1, 2),
    (0, 1, 3),
    (0, 2, 3),
    (1,),
)
N_ITEMS = 4


def make_db(rows=ROWS, n_items=N_ITEMS) -> TransactionDatabase:
    return TransactionDatabase(tuple(rows), MiningCatalog(n_items))


def single(db, min_support, **kw):
    return canonical_itemset_order(fpclose(db, min_support, **kw))


class TestDegeneratePlans:
    @pytest.mark.parametrize("min_support", [1, 2, 3])
    def test_explicitly_empty_shard(self, min_support):
        db = make_db()
        n = len(db)
        plan = ((), tuple(range(0, n, 2)), (), tuple(range(1, n, 2)))
        sharded = fpclose_sharded(
            db, min_support, n_workers=2, plan=plan
        )
        assert sharded == single(db, min_support)

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_single_row_shards(self, n_workers):
        # Every shard owns one row: local thresholds pigeonhole down to
        # 1, so each leaf emits every subset of its row — the merge must
        # still distill the exact global closed family.
        db = make_db()
        plan = tuple((tid,) for tid in range(len(db)))
        sharded = fpclose_sharded(db, 2, n_workers=n_workers, plan=plan)
        assert sharded == single(db, 2)

    def test_all_duplicate_row_shards(self):
        # One distinct transaction repeated: every shard mines the same
        # itemsets, and present-in-all summation must recover the exact
        # global supports without over-counting.
        rows = ((0, 1, 2),) * 9 + ((1, 3),) * 3
        db = make_db(rows)
        plan = round_robin_shards(len(db), 3)
        sharded = fpclose_sharded(db, 2, n_workers=3, plan=plan)
        assert sharded == single(db, 2)

    def test_more_shards_requested_than_transactions(self):
        db = make_db(ROWS[:5])
        # round-robin into 16 shards of a 5-row database leaves 5
        # one-row shards after empties are dropped.
        sharded = fpclose_sharded(db, 2, n_workers=16)
        assert sharded == single(db, 2)

    @pytest.mark.parametrize("max_len", [None, 2])
    def test_max_len_respected_through_merge(self, max_len):
        db = make_db()
        sharded = fpclose_sharded(db, 2, max_len=max_len, n_workers=3)
        assert sharded == single(db, 2, max_len=max_len)


class TestShardedDelta:
    @pytest.mark.parametrize(
        "touched",
        [
            (0,),
            (5, 11),
            (1, 3, 5, 7, 9),
            tuple(range(len(ROWS))),
        ],
    )
    def test_touched_mask_matches_single_process_delta(self, touched):
        db = make_db()
        mask = 0
        for tid in touched:
            mask |= 1 << tid
        sharded = fpclose_sharded(
            db, 2, n_workers=4, touched_mask=mask
        )
        assert sharded == canonical_itemset_order(
            fpclose(db, 2, touched_mask=mask)
        )

    def test_zero_touched_mask_short_circuits(self):
        db = make_db()
        assert fpclose_sharded(db, 2, n_workers=4, touched_mask=0) == []

    def test_delta_with_degenerate_plan(self):
        db = make_db()
        plan = tuple((tid,) for tid in range(len(db)))
        mask = (1 << 2) | (1 << 8)
        sharded = fpclose_sharded(
            db, 2, n_workers=4, plan=plan, touched_mask=mask
        )
        assert sharded == canonical_itemset_order(
            fpclose(db, 2, touched_mask=mask)
        )


class TestUnfusedTreePath:
    def test_pair_round_runs_when_pool_is_wide(self, monkeypatch):
        # On a wide pool (cpu_count >= leaves) four shards take the
        # unfused shape: a leaf round, then sibling pair-merges at
        # region thresholds, then the root merge. Force it regardless
        # of the host's core count and check both the bytes and that
        # the pair round actually executed.
        import repro.parallel.miner as miner_mod

        monkeypatch.setattr(miner_mod.os, "cpu_count", lambda: 8)
        db = make_db(ROWS * 3)
        registry = MetricsRegistry()
        with use_registry(registry):
            sharded = fpclose_sharded(db, 3, n_workers=4)
        assert sharded == single(db, 3)
        counters = registry.snapshot().counters
        assert counters.get("parallel.pair.candidates", 0) > 0

    def test_odd_leaf_count_passthrough(self, monkeypatch):
        # Five shards pair into two merged regions plus one passthrough
        # leaf; the root merge must treat all three as regions.
        import repro.parallel.miner as miner_mod

        monkeypatch.setattr(miner_mod.os, "cpu_count", lambda: 8)
        db = make_db(ROWS * 3)
        plan = round_robin_shards(len(db), 5)
        sharded = fpclose_sharded(db, 3, n_workers=5, plan=plan)
        assert sharded == single(db, 3)
