"""Property test: shard-mine + merge == fpclose over the union database.

Hypothesis generates arbitrary transaction databases and arbitrary
shard assignments — including empty shards, single-report shards, the
everything-in-one-shard split, and wildly unbalanced ones — and the
two-phase scheme (mine all locally frequent itemsets per shard at the
pigeonhole-scaled threshold, merge exactly) must reproduce ``fpclose``
over the whole database every time.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mining.fpclose import fpclose
from repro.mining.transactions import (
    TransactionDatabase,
    canonical_itemset_order,
)
from repro.parallel.merge import merge_shard_itemsets
from repro.parallel.worker import local_threshold, mine_shard

ITEMS = [f"i{k}" for k in range(8)]

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=6),
    min_size=1,
    max_size=30,
)


def build_database(rows: list[set[str]]) -> TransactionDatabase:
    return TransactionDatabase.from_labelled(rows)


def sharded_closed(database, min_support, assignment, n_shards, max_len=None):
    """Run the worker+merge scheme in-process over an explicit assignment."""
    transactions = list(database)
    n = len(transactions)
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for tid, shard in enumerate(assignment):
        shards[shard].append(tid)
    outputs = []
    for index, tids in enumerate(shards):
        if not tids:
            continue  # empty shards contribute nothing, and must not crash
        rows = tuple(tuple(sorted(transactions[tid])) for tid in tids)
        threshold = local_threshold(min_support, len(tids), n)
        *_, itemsets = mine_shard(
            index, rows, len(database.catalog), threshold, max_len
        )
        outputs.append(itemsets)
    return merge_shard_itemsets(
        outputs, database, min_support, max_len=max_len
    )


@given(
    rows=transactions_strategy,
    min_support=st.integers(min_value=1, max_value=6),
    n_shards=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_merge_equals_fpclose(rows, min_support, n_shards, data):
    assignment = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    database = build_database(rows)
    expected = canonical_itemset_order(fpclose(database, min_support))
    assert sharded_closed(database, min_support, assignment, n_shards) == expected


@given(
    rows=transactions_strategy,
    min_support=st.integers(min_value=1, max_value=4),
    max_len=st.integers(min_value=3, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_merge_respects_max_len(rows, min_support, max_len):
    # Workers mine capped at max_len; closures longer than max_len are
    # dropped at the merge — exactly fpclose's own max_len contract.
    database = build_database(rows)
    assignment = [tid % 3 for tid in range(len(rows))]
    expected = canonical_itemset_order(
        fpclose(database, min_support, max_len=max_len)
    )
    actual = sharded_closed(
        database, min_support, assignment, 3, max_len=max_len
    )
    assert actual == expected


@given(rows=transactions_strategy, min_support=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_single_report_shards(rows, min_support):
    # The degenerate extreme: every transaction is its own shard, so all
    # local thresholds bottom out at 1 and the merge does all the work.
    database = build_database(rows)
    assignment = list(range(len(rows)))
    expected = canonical_itemset_order(fpclose(database, min_support))
    assert (
        sharded_closed(database, min_support, assignment, len(rows))
        == expected
    )
