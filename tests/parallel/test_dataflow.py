"""Dataflow-scheduler differential harness: order, death, and warmth.

The dependency-driven scheduler in :mod:`repro.parallel.miner` promises
byte-identical closed sets at any worker count, under ANY completion
order, across cold and warm pools, and through mid-mine worker death.
This module attacks each axis directly:

- :class:`InlinePool` replaces the process pool with an in-process
  executor whose ``wait_event`` completes pending futures in a chosen
  adversarial order (FIFO, LIFO, or seeded shuffle), so the scheduler
  sees worst-case orderings deterministically — including a hypothesis
  sweep over random orders.
- :class:`FlakyPool` injects a ``BrokenProcessPool`` mid-mine and wipes
  worker residency on recovery, modelling a replaced worker that must
  rebuild its rows from the fingerprint.
- A real :class:`~repro.parallel.pool.MiningPool` test kills an actual
  worker process via the ``MEDIAR_POOL_KILL_NODE`` hook.
- Warm/cold tests assert identity of repeated mines plus the residency
  counters (``reuse``/``cold_start``/``delta_ships``) that the
  benchmarks record.
"""

from __future__ import annotations

import queue
import random
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.fpclose import fpclose
from repro.mining.transactions import (
    MiningCatalog,
    TransactionDatabase,
    canonical_itemset_order,
)
from repro.obs import InMemorySink, MetricsRegistry
from repro.obs.metrics import use_registry
from repro.parallel.miner import fpclose_sharded
from repro.parallel.pool import KILL_ENV, MiningPool, reset_residency

N_ITEMS = 12
MIN_SUPPORT = 3


@pytest.fixture(autouse=True)
def _clean_residency():
    # Inline pools run `run_node` in this process, so the worker-side
    # residency globals live here; keep tests independent.
    reset_residency()
    yield
    reset_residency()


def build_rows(seed: int, n_rows: int = 60) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    return [
        tuple(sorted(rng.sample(range(N_ITEMS), rng.randint(1, 6))))
        for _ in range(n_rows)
    ]


def build_db(rows) -> TransactionDatabase:
    return TransactionDatabase(tuple(rows), MiningCatalog(N_ITEMS))


def serial_truth(database, **kwargs):
    return canonical_itemset_order(fpclose(database, MIN_SUPPORT, **kwargs))


class InlinePool(MiningPool):
    """A MiningPool whose tasks run inline, completed in chosen order.

    ``submit`` only queues; ``wait_event`` picks the next pending task
    by the adversarial policy, runs it in-process, and resolves its
    future — so the scheduler observes completion orders no real pool
    would reliably produce.
    """

    def __init__(self, order: str = "fifo", *, width: int = 8, rng=None):
        super().__init__(1, width=width)
        self.order = order
        self.rng = rng
        self.pending: list = []
        self.completed_labels: list[str] = []

    def submit(self, fn, task):
        future = Future()
        future.generation = self.generation
        self.pending.append((fn, task, future))
        return future

    def _pick(self):
        if self.order == "fifo":
            index = 0
        elif self.order == "lifo":
            index = len(self.pending) - 1
        else:
            index = self.rng.randrange(len(self.pending))
        return self.pending.pop(index)

    def _complete_one(self) -> None:
        fn, task, future = self._pick()
        self.completed_labels.append(task["label"])
        result = fn(task)
        future.set_result(result)

    def wait_event(self, events, timeout=None):
        while True:
            try:
                return events.get_nowait()
            except queue.Empty:
                pass
            assert self.pending, "scheduler waited with nothing in flight"
            self._complete_one()


class FlakyPool(InlinePool):
    """Fails the N-th completion with BrokenProcessPool.

    Recovery also wipes worker-side residency, exactly what replacing
    the dead worker processes does: the resubmitted tasks must rebuild
    every referenced shard from the fingerprint (rows reshipped).
    """

    def __init__(self, fail_at: int, **kwargs):
        super().__init__(**kwargs)
        self.fail_at: int | None = fail_at
        self._n_completed = 0

    def _complete_one(self) -> None:
        if self.fail_at is not None and self._n_completed == self.fail_at:
            self.fail_at = None
            self._n_completed += 1
            fn, task, future = self._pick()
            future.set_exception(BrokenProcessPool("worker died mid-mine"))
            return
        self._n_completed += 1
        super()._complete_one()

    def recover(self, generation: int) -> None:
        before = self.generation
        super().recover(generation)
        if self.generation != before:
            reset_residency()


class TestCompletionOrders:
    @pytest.mark.parametrize("order", ["fifo", "lifo"])
    @pytest.mark.parametrize("n_workers", [2, 3, 4, 5, 8])
    def test_order_and_width_are_invisible(self, order, n_workers):
        database = build_db(build_rows(11))
        expected = serial_truth(database)
        with InlinePool(order) as pool:
            got = fpclose_sharded(
                database, MIN_SUPPORT, n_workers=n_workers, pool=pool
            )
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(
        order_seed=st.integers(0, 10**6),
        n_workers=st.integers(2, 8),
        data_seed=st.integers(0, 30),
    )
    def test_property_shuffled_completions(
        self, order_seed, n_workers, data_seed
    ):
        reset_residency()  # hypothesis bypasses function-scoped fixtures
        database = build_db(build_rows(data_seed))
        expected = serial_truth(database)
        pool = InlinePool("random", rng=random.Random(order_seed))
        got = fpclose_sharded(
            database, MIN_SUPPORT, n_workers=n_workers, pool=pool
        )
        assert got == expected

    def test_orders_actually_differ(self):
        # Sanity check on the harness itself: LIFO visits the leaves in
        # a different order than FIFO, so the identity above is not
        # vacuous.
        database = build_db(build_rows(11))
        with InlinePool("fifo") as fifo, InlinePool("lifo") as lifo:
            fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=fifo)
            reset_residency()
            fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=lifo)
        assert fifo.completed_labels != lifo.completed_labels
        assert sorted(fifo.completed_labels) == sorted(lifo.completed_labels)


class TestWarmPools:
    def test_warm_remine_is_identical_and_counted(self):
        database = build_db(build_rows(7))
        expected = serial_truth(database)
        with InlinePool("lifo") as pool:
            cold = fpclose_sharded(
                database, MIN_SUPPORT, n_workers=4, pool=pool
            )
            assert pool.counters["cold_start"] == 1
            warm = fpclose_sharded(
                database, MIN_SUPPORT, n_workers=4, pool=pool
            )
        assert cold == expected
        assert warm == expected
        assert pool.counters["reuse"] == 1

    def test_warm_delta_mine_matches_serial_delta(self):
        database = build_db(build_rows(3))
        mask = (1 << 5) | (1 << 17) | (1 << 40)
        expected = serial_truth(database, touched_mask=mask)
        with InlinePool("fifo") as pool:
            fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
            got = fpclose_sharded(
                database,
                MIN_SUPPORT,
                n_workers=4,
                pool=pool,
                touched_mask=mask,
            )
        assert got == expected
        assert pool.counters["reuse"] >= 1

    def test_grown_database_ships_deltas_not_history(self):
        rows = build_rows(5, n_rows=48)
        with InlinePool("fifo") as pool:
            fpclose_sharded(
                build_db(rows), MIN_SUPPORT, n_workers=4, pool=pool
            )
            grown = list(rows)
            grown[10] = tuple(sorted(set(grown[10]) | {0, 1}))
            grown.extend(build_rows(99, n_rows=8))
            database = build_db(grown)
            expected = serial_truth(database)
            got = fpclose_sharded(
                database,
                MIN_SUPPORT,
                n_workers=4,
                pool=pool,
                updated_tids=[10],
            )
        assert got == expected
        assert pool.counters["reuse"] >= 1
        assert pool.counters["delta_ships"] >= 1
        assert pool.counters["cold_start"] == 1  # only the first mine

    def test_counters_and_node_timeline_reach_registry(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sink=sink)
        database = build_db(build_rows(23))
        with InlinePool("fifo") as pool, use_registry(registry):
            fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
            fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
        counters = registry.snapshot().counters
        assert counters["parallel.pool.cold_start"] == 1
        assert counters["parallel.pool.reuse"] == 1
        assert counters["parallel.pair.candidates"] > 0
        assert counters["parallel.merge.candidates"] > 0
        nodes = sink.of_type("parallel.node")
        # 4 leaves -> 4 mines + 2 pairs + 1 finalize, twice.
        assert len(nodes) == 14
        kinds = {record["node"]: record["kind"] for record in nodes}
        assert "finalize:0-3" in kinds
        for record in nodes:
            assert record["t_done"] >= record["t_submit"] >= 0.0
            assert record["attempts"] >= 1


class TestWorkerDeath:
    @pytest.mark.parametrize("fail_at", [0, 2, 5])
    def test_inline_death_heals_and_matches(self, fail_at):
        database = build_db(build_rows(13))
        expected = serial_truth(database)
        pool = FlakyPool(fail_at, order="fifo")
        got = fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
        assert got == expected
        assert pool.counters["worker_replacements"] == 1

    @settings(max_examples=25, deadline=None)
    @given(
        order_seed=st.integers(0, 10**6),
        fail_at=st.integers(0, 5),
        data_seed=st.integers(0, 30),
    )
    def test_property_death_under_shuffled_orders(
        self, order_seed, fail_at, data_seed
    ):
        reset_residency()
        database = build_db(build_rows(data_seed))
        expected = serial_truth(database)
        pool = FlakyPool(
            fail_at, order="random", rng=random.Random(order_seed)
        )
        got = fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
        assert got == expected
        assert pool.counters["worker_replacements"] == 1

    def test_warm_state_survives_death_correctly(self):
        # Die on the warm re-mine: the pool must come back cold (rows
        # reshipped from the fingerprint) yet produce the same bytes.
        database = build_db(build_rows(17))
        expected = serial_truth(database)
        pool = FlakyPool(10**9, order="fifo")  # no failure on mine 1
        cold = fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
        pool.fail_at = pool._n_completed + 1  # second task of mine 2
        warm = fpclose_sharded(database, MIN_SUPPORT, n_workers=4, pool=pool)
        assert cold == expected
        assert warm == expected
        assert pool.counters["worker_replacements"] == 1
        assert pool.counters["residency_misses"] >= 1

    def test_real_pool_worker_death(self, tmp_path, monkeypatch):
        database = build_db(build_rows(21))
        expected = serial_truth(database)
        marker = tmp_path / "killed"
        monkeypatch.setenv(KILL_ENV, f"mine:2-2|{marker}")
        with MiningPool(2, width=4) as pool:
            got = fpclose_sharded(
                database, MIN_SUPPORT, n_workers=4, pool=pool
            )
        assert got == expected
        assert marker.exists()
        assert pool.counters["worker_replacements"] >= 1
