"""Shard planning: determinism, coverage, and validation errors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers import ReportDataset, SyntheticConfig, SyntheticFAERSGenerator
from repro.parallel import (
    plan_shards,
    round_robin_shards,
    shard_of_case,
    validate_plan,
)
from repro.parallel.miner import resolve_workers
from repro.parallel.worker import local_threshold


@pytest.fixture(scope="module")
def two_quarter_dataset() -> ReportDataset:
    """Q1 + Q2 synthetic reports in one dataset (quarter-prefixed ids)."""
    reports = []
    for quarter in ("2014Q1", "2014Q2"):
        config = SyntheticConfig(
            n_reports=120, n_drugs=80, n_adrs=25, seed=5, quarter=quarter
        )
        reports.extend(SyntheticFAERSGenerator(config).generate())
    return ReportDataset(reports)


def assert_partition(plan, n_transactions):
    tids = [tid for shard in plan for tid in shard]
    assert sorted(tids) == list(range(n_transactions))


class TestHashStrategy:
    def test_plan_is_a_partition(self, two_quarter_dataset):
        plan = plan_shards(two_quarter_dataset, 4, "hash")
        assert_partition(plan, len(two_quarter_dataset))

    def test_plan_is_deterministic(self, two_quarter_dataset):
        first = plan_shards(two_quarter_dataset, 4, "hash")
        second = plan_shards(two_quarter_dataset, 4, "hash")
        assert first == second

    def test_hash_is_stable_not_interpreter_salted(self):
        # Pinned values: if these move, shard membership — and any
        # persisted shard artifacts — silently change between runs.
        assert shard_of_case("2014Q1-0000001", 4) == shard_of_case(
            "2014Q1-0000001", 4
        )
        assert [shard_of_case(f"case-{i}", 3) for i in range(6)] == [
            1, 0, 1, 2, 2, 2,
        ]

    def test_roughly_balanced(self, two_quarter_dataset):
        plan = plan_shards(two_quarter_dataset, 4, "hash")
        sizes = sorted(len(shard) for shard in plan)
        assert sizes[0] >= len(two_quarter_dataset) // 4 - 30

    def test_single_shard(self, two_quarter_dataset):
        (only,) = plan_shards(two_quarter_dataset, 1, "hash")
        assert len(only) == len(two_quarter_dataset)


class TestQuarterStrategy:
    def test_one_shard_per_quarter_in_sorted_order(self, two_quarter_dataset):
        plan = plan_shards(two_quarter_dataset, 2, "quarter")
        assert len(plan) == 2
        assert_partition(plan, len(two_quarter_dataset))
        quarters = [
            {two_quarter_dataset.reports[tid].quarter for tid in shard}
            for shard in plan
        ]
        assert quarters == [{"2014Q1"}, {"2014Q2"}]

    def test_n_shards_does_not_split_quarters(self, two_quarter_dataset):
        # The strategy shards by quarter label; n_shards is only the
        # worker budget, not a forced shard count.
        plan = plan_shards(two_quarter_dataset, 8, "quarter")
        assert len(plan) == 2


class TestValidation:
    def test_unknown_strategy_rejected(self, two_quarter_dataset):
        with pytest.raises(ConfigError, match="unknown shard strategy"):
            plan_shards(two_quarter_dataset, 2, "astrology")

    def test_zero_shards_rejected(self, two_quarter_dataset):
        with pytest.raises(ConfigError, match="n_shards"):
            plan_shards(two_quarter_dataset, 0, "hash")

    def test_round_robin_covers(self):
        plan = round_robin_shards(10, 3)
        assert_partition(plan, 10)

    def test_round_robin_more_shards_than_transactions(self):
        plan = round_robin_shards(2, 5)
        assert_partition(plan, 2)
        assert all(shard for shard in plan)

    def test_validate_plan_accepts_partition(self):
        assert validate_plan([(0, 2), (1,)], 3) == ((0, 2), (1,))

    def test_validate_plan_drops_empty_shards(self):
        assert validate_plan([(0,), (), (1,)], 2) == ((0,), (1,))

    def test_validate_plan_rejects_overlap(self):
        with pytest.raises(ConfigError, match="two shards"):
            validate_plan([(0, 1), (1, 2)], 3)

    def test_validate_plan_rejects_gaps(self):
        with pytest.raises(ConfigError, match="covers 2 of 3"):
            validate_plan([(0,), (2,)], 3)

    def test_validate_plan_rejects_out_of_range(self):
        with pytest.raises(ConfigError, match="outside database"):
            validate_plan([(0, 7)], 3)


class TestWorkerScaling:
    def test_local_threshold_pigeonhole_floor(self):
        # ceil(5 * 25 / 100) = 2; never below 1 even for tiny shards.
        assert local_threshold(5, 25, 100) == 2
        assert local_threshold(5, 100, 100) == 5
        assert local_threshold(5, 1, 100) == 1
        assert local_threshold(1, 0, 100) == 1

    def test_resolve_workers(self):
        # Positive requests pass through unclamped: they size the shard
        # plan, which must not depend on the machine's core count.
        assert resolve_workers(1) == 1
        assert resolve_workers(6) == 6
        assert resolve_workers(0) >= 1  # 0 = one per core
        with pytest.raises(ConfigError):
            resolve_workers(-1)
