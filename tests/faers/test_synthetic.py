"""Tests for the synthetic FAERS generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import ReportType
from repro.faers.synthetic import (
    InteractionSpec,
    PAPER_QUARTER_REPORTS,
    SyntheticConfig,
    SyntheticFAERSGenerator,
    generate_year,
    quarter_config,
)


def small_config(**overrides):
    defaults = dict(n_reports=600, n_drugs=300, n_adrs=80, seed=7)
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestInteractionSpec:
    def test_genuine_classification(self):
        genuine = InteractionSpec(("A", "B"), ("X",), 0.7, 0.05)
        confounded = InteractionSpec(("A", "B"), ("X",), 0.6, 0.5)
        assert genuine.is_genuine
        assert not confounded.is_genuine

    def test_single_drug_rejected(self):
        with pytest.raises(ConfigError):
            InteractionSpec(("A",), ("X",), 0.5, 0.1)

    def test_duplicate_drugs_rejected(self):
        with pytest.raises(ConfigError):
            InteractionSpec(("A", "A"), ("X",), 0.5, 0.1)

    def test_empty_adrs_rejected(self):
        with pytest.raises(ConfigError):
            InteractionSpec(("A", "B"), (), 0.5, 0.1)

    def test_probability_range_validated(self):
        with pytest.raises(ConfigError):
            InteractionSpec(("A", "B"), ("X",), 1.5, 0.1)


class TestSyntheticConfig:
    def test_interaction_drugs_must_be_in_universe(self):
        spec = InteractionSpec(("NOT-A-DRUG", "ALSO-NOT"), ("X",), 0.5, 0.1)
        with pytest.raises(ConfigError, match="missing from the drug universe"):
            SyntheticConfig(n_reports=100, n_drugs=100, n_adrs=30, interactions=(spec,))

    def test_tiny_universe_rejected(self):
        with pytest.raises(ConfigError, match="universe too small"):
            SyntheticConfig(n_reports=100, n_drugs=10, n_adrs=30)


class TestGeneration:
    def test_deterministic_per_seed(self):
        left = SyntheticFAERSGenerator(small_config()).generate()
        right = SyntheticFAERSGenerator(small_config()).generate()
        assert [r.signature() for r in left] == [r.signature() for r in right]

    def test_different_seeds_differ(self):
        left = SyntheticFAERSGenerator(small_config(seed=1)).generate()
        right = SyntheticFAERSGenerator(small_config(seed=2)).generate()
        assert [r.signature() for r in left] != [r.signature() for r in right]

    def test_report_count_and_validity(self):
        reports = SyntheticFAERSGenerator(small_config()).generate()
        assert len(reports) == 600
        for report in reports:
            assert report.drugs and report.adrs
            assert report.report_type is ReportType.EXPEDITED
            assert report.quarter == "2014Q1"

    def test_case_ids_unique(self):
        reports = SyntheticFAERSGenerator(small_config()).generate()
        ids = [r.case_id for r in reports]
        assert len(set(ids)) == len(ids)

    def test_planted_combination_occurs(self):
        config = small_config(n_reports=2000)
        generator = SyntheticFAERSGenerator(config)
        reports = generator.generate()
        spec = generator.genuine_interactions()[0]
        combo = set(spec.drugs)
        exposed = [r for r in reports if combo <= set(r.drugs)]
        assert len(exposed) >= 3

    def test_planted_signal_is_exclusive(self):
        """The joint ADR rate under full exposure dwarfs the partial rate."""
        config = small_config(n_reports=4000)
        generator = SyntheticFAERSGenerator(config)
        reports = generator.generate()
        spec = generator.genuine_interactions()[0]
        combo, adr = set(spec.drugs), spec.adrs[0]
        full = [r for r in reports if combo <= set(r.drugs)]
        partial = [
            r
            for r in reports
            if set(r.drugs) & combo and not combo <= set(r.drugs)
        ]
        assert full and partial
        full_rate = sum(adr in r.adrs for r in full) / len(full)
        partial_rate = sum(adr in r.adrs for r in partial) / len(partial)
        assert full_rate > 3 * partial_rate

    def test_ground_truth_partition(self):
        generator = SyntheticFAERSGenerator(small_config())
        truth = set(generator.ground_truth())
        genuine = set(generator.genuine_interactions())
        confounded = set(generator.confounded_combinations())
        assert genuine | confounded == truth
        assert not genuine & confounded

    def test_demographics_plausible(self):
        reports = SyntheticFAERSGenerator(small_config()).generate()
        assert all(0 <= r.age <= 120 for r in reports if r.age is not None)
        assert {r.sex for r in reports} <= {"F", "M"}


class TestQuarterConfig:
    def test_scaled_report_counts(self):
        config = quarter_config("2014Q1", scale=0.04)
        expected = round(PAPER_QUARTER_REPORTS["2014Q1"] * 0.04)
        assert config.n_reports == expected
        assert config.quarter == "2014Q1"

    def test_quarters_have_distinct_seeds(self):
        seeds = {quarter_config(q).seed for q in PAPER_QUARTER_REPORTS}
        assert len(seeds) == 4

    def test_unknown_quarter_rejected(self):
        with pytest.raises(ConfigError):
            quarter_config("2019Q1")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            quarter_config("2014Q1", scale=0.0)

    def test_table_5_1_shape(self):
        """Distinct drugs ≫ distinct ADRs, as in every Table 5.1 row."""
        config = quarter_config("2014Q2", scale=0.02)
        stats = ReportDataset(SyntheticFAERSGenerator(config).generate()).stats()
        assert stats.n_drugs > 3 * stats.n_adrs
        assert stats.n_reports == config.n_reports


class TestGenerateYear:
    def test_all_four_quarters(self):
        year = generate_year(scale=0.005)
        assert sorted(year) == ["2014Q1", "2014Q2", "2014Q3", "2014Q4"]
        assert all(len(reports) >= 500 for reports in year.values())

    def test_quarters_are_distinct_data(self):
        year = generate_year(scale=0.005)
        signatures = {
            quarter: tuple(r.signature() for r in reports[:50])
            for quarter, reports in year.items()
        }
        assert len(set(signatures.values())) == 4


class TestTherapyClasses:
    def test_class_affinity_raises_within_class_cooccurrence(self):
        from repro.mining.transactions import TransactionDatabase

        def mean_classmate_fraction(affinity):
            config = small_config(
                n_reports=1500, class_affinity=affinity, n_therapy_classes=30
            )
            generator = SyntheticFAERSGenerator(config)
            classes = generator._therapy_classes
            reports = generator.generate()
            fractions = []
            for report in reports:
                drugs = list(report.drugs)
                if len(drugs) < 2:
                    continue
                pairs = classmates = 0
                for i, left in enumerate(drugs):
                    for right in drugs[i + 1 :]:
                        pairs += 1
                        if right in classes.get(left, ()):
                            classmates += 1
                fractions.append(classmates / pairs)
            return sum(fractions) / len(fractions)

        assert mean_classmate_fraction(0.6) > 2 * mean_classmate_fraction(0.0)

    def test_classes_partition_the_universe(self):
        generator = SyntheticFAERSGenerator(small_config())
        classes = generator._therapy_classes
        assert set(classes) == set(generator._drugs)
        for drug, members in classes.items():
            assert drug in members

    def test_invalid_class_parameters_rejected(self):
        with pytest.raises(ConfigError):
            small_config(n_therapy_classes=0)
        with pytest.raises(ConfigError):
            small_config(class_affinity=1.0)
