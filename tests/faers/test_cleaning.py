"""Tests for the cleaning pass: normalization, spelling, de-duplication."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.cleaning import (
    ReportCleaner,
    SpellingCorrector,
    _edit_distance_at_most_one,
    normalize_adr_term,
    normalize_drug_name,
)
from repro.faers.schema import CaseReport


class TestNormalizeDrugName:
    def test_uppercases_and_trims(self):
        assert normalize_drug_name("  aspirin ") == "ASPIRIN"

    def test_strips_dosage_tail(self):
        assert normalize_drug_name("ASPIRIN 81 MG") == "ASPIRIN"
        assert normalize_drug_name("NEXIUM 40MG") == "NEXIUM"

    def test_strips_form_suffixes(self):
        assert normalize_drug_name("WARFARIN SODIUM TABLETS") == "WARFARIN"
        assert normalize_drug_name("PROGRAF CAPSULES") == "PROGRAF"

    def test_strips_repeated_tails(self):
        assert normalize_drug_name("IBUPROFEN 200 MG TAB") == "IBUPROFEN"

    def test_drops_parenthetical(self):
        assert normalize_drug_name("TACROLIMUS (PROGRAF)") == "TACROLIMUS"

    def test_removes_punctuation(self):
        assert normalize_drug_name("ST. JOHN'S WORT") == "ST JOHN S WORT"

    def test_collapses_whitespace(self):
        assert normalize_drug_name("A    B") == "A B"

    def test_all_noise_becomes_empty(self):
        assert normalize_drug_name("(unknown)") == ""

    def test_keeps_hyphens(self):
        assert normalize_drug_name("co-trimoxazole") == "CO-TRIMOXAZOLE"


class TestNormalizeAdrTerm:
    def test_basic(self):
        assert normalize_adr_term(" osteonecrosis of jaw ") == "OSTEONECROSIS OF JAW"

    def test_no_dosage_stripping_for_adrs(self):
        # ADR terms may legitimately end in words the drug cleaner strips.
        assert normalize_adr_term("BLOOD SODIUM") == "BLOOD SODIUM"


class TestSpellingCorrector:
    def test_exact_match_untouched(self):
        corrector = SpellingCorrector(["ASPIRIN", "WARFARIN"])
        assert corrector.correct("ASPIRIN") == "ASPIRIN"

    def test_single_deletion_fixed(self):
        corrector = SpellingCorrector(["ASPIRIN"])
        assert corrector.correct("ASPIRN") == "ASPIRIN"

    def test_single_insertion_fixed(self):
        corrector = SpellingCorrector(["ASPIRIN"])
        assert corrector.correct("ASPIIRIN") == "ASPIRIN"

    def test_single_substitution_fixed(self):
        corrector = SpellingCorrector(["ASPIRIN"])
        assert corrector.correct("ASPIRON") == "ASPIRIN"

    def test_distance_two_untouched(self):
        corrector = SpellingCorrector(["ASPIRIN"])
        assert corrector.correct("ASPRN") == "ASPRN"

    def test_ambiguous_untouched(self):
        corrector = SpellingCorrector(["PRILOSEC", "PRILOSEG"])
        # One substitution away from both → leave as-is.
        assert corrector.correct("PRILOSEK") == "PRILOSEK"

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ConfigError):
            SpellingCorrector([])


class TestEditDistanceAtMostOne:
    @pytest.mark.parametrize(
        ("left", "right", "expected"),
        [
            ("ABC", "ABC", True),
            ("ABC", "ABD", True),
            ("ABC", "AB", True),
            ("ABC", "ABCD", True),
            ("ABC", "AXD", False),
            ("ABC", "A", False),
            ("", "A", True),
            ("", "", True),
        ],
    )
    def test_cases(self, left, right, expected):
        assert _edit_distance_at_most_one(left, right) is expected


class TestReportCleaner:
    def test_normalization_applied(self):
        reports = [CaseReport.build("c1", ["aspirin 81 mg"], ["pain"])]
        cleaned, stats = ReportCleaner().clean(reports)
        assert cleaned[0].drugs == ("ASPIRIN",)
        assert cleaned[0].adrs == ("PAIN",)
        assert stats.reports_out == 1

    def test_case_versions_merged(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"]),
            CaseReport.build("c1", ["B"], ["Y"]),
        ]
        cleaned, stats = ReportCleaner().clean(reports)
        assert len(cleaned) == 1
        assert cleaned[0].drugs == ("A", "B")
        assert cleaned[0].adrs == ("X", "Y")
        assert stats.cases_merged == 1

    def test_exact_content_duplicates_dropped(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"]),
            CaseReport.build("c2", ["A"], ["X"]),
            CaseReport.build("c3", ["A"], ["Y"]),
        ]
        cleaned, stats = ReportCleaner().clean(reports)
        assert [r.case_id for r in cleaned] == ["c1", "c3"]
        assert stats.exact_duplicates_dropped == 1

    def test_report_emptied_by_normalization_dropped(self):
        reports = [
            CaseReport.build("c1", ["(unknown)"], ["PAIN"]),
            CaseReport.build("c2", ["ASPIRIN"], ["PAIN"]),
        ]
        cleaned, stats = ReportCleaner().clean(reports)
        assert len(cleaned) == 1
        assert stats.empty_reports_dropped == 1

    def test_misspelling_corrected_against_vocabulary(self):
        cleaner = ReportCleaner(drug_vocabulary=["ASPIRIN", "WARFARIN"])
        reports = [CaseReport.build("c1", ["ASPIRN"], ["PAIN"])]
        cleaned, stats = cleaner.clean(reports)
        assert cleaned[0].drugs == ("ASPIRIN",)
        assert stats.drug_names_corrected == 1

    def test_adr_correction_counted_separately(self):
        cleaner = ReportCleaner(adr_vocabulary=["OSTEOPOROSIS"])
        reports = [CaseReport.build("c1", ["A"], ["OSTEOPOROSI"])]
        cleaned, stats = cleaner.clean(reports)
        assert cleaned[0].adrs == ("OSTEOPOROSIS",)
        assert stats.adr_terms_corrected == 1
        assert stats.drug_names_corrected == 0

    def test_order_of_first_appearance_preserved(self):
        reports = [
            CaseReport.build("c2", ["B"], ["Y"]),
            CaseReport.build("c1", ["A"], ["X"]),
        ]
        cleaned, _ = ReportCleaner().clean(reports)
        assert [r.case_id for r in cleaned] == ["c2", "c1"]

    def test_stats_row_accounting(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"]),
            CaseReport.build("c1", ["A"], ["X"]),
            CaseReport.build("c2", ["A"], ["X"]),
        ]
        cleaned, stats = ReportCleaner().clean(reports)
        assert stats.rows_in == 3
        assert stats.reports_out == len(cleaned) == 1
        assert stats.cases_merged == 1
        assert stats.exact_duplicates_dropped == 1
