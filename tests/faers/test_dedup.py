"""Tests for near-duplicate report detection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.dedup import (
    DuplicatePair,
    NearDuplicatePolicy,
    find_near_duplicates,
    jaccard_similarity,
    resolve_near_duplicates,
)
from repro.faers.schema import CaseReport


def report(i, drugs, adrs):
    return CaseReport.build(f"c{i}", drugs, adrs)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity(frozenset("ab"), frozenset("cd")) == 0.0

    def test_partial(self):
        assert jaccard_similarity(frozenset("abc"), frozenset("abd")) == pytest.approx(
            2 / 4
        )

    def test_both_empty(self):
        assert jaccard_similarity(frozenset(), frozenset()) == 1.0


class TestFindNearDuplicates:
    def test_near_pair_found(self):
        reports = [
            report(1, ["RAREDRUG", "ASPIRIN"], ["RAREADR", "PAIN"]),
            report(2, ["RAREDRUG", "ASPIRIN"], ["RAREADR", "PAIN", "NAUSEA"]),
            report(3, ["OTHER"], ["FEVER"]),
        ]
        pairs = find_near_duplicates(reports, threshold=0.7)
        assert pairs == [DuplicatePair(0, 1, pytest.approx(4 / 5))]

    def test_threshold_respected(self):
        reports = [
            report(1, ["A", "B", "C"], ["X"]),
            report(2, ["A", "B", "C"], ["Y"]),  # Jaccard 3/5 = 0.6
        ]
        assert find_near_duplicates(reports, threshold=0.8) == []
        assert find_near_duplicates(reports, threshold=0.6)

    def test_short_reports_never_flagged(self):
        # Two independent patients on one common drug with one common
        # reaction are not duplicates, however identical the reports.
        reports = [
            report(1, ["ASPIRIN"], ["PAIN"]),
            report(2, ["ASPIRIN"], ["PAIN"]),
        ]
        assert find_near_duplicates(reports, threshold=0.8) == []
        assert find_near_duplicates(reports, threshold=0.8, min_items=2)

    def test_dissimilar_reports_never_flagged(self):
        reports = [report(i, [f"D{i}"], [f"A{i}"]) for i in range(20)]
        assert find_near_duplicates(reports, threshold=0.5) == []

    def test_pairs_sorted_by_similarity(self):
        reports = [
            report(1, ["Q", "W"], ["X", "Y"]),
            report(2, ["Q", "W"], ["X", "Y"]),  # identical to 1
            report(3, ["R", "T"], ["X", "Z", "V"]),
            report(4, ["R", "T"], ["X", "Z"]),  # close to 3
        ]
        pairs = find_near_duplicates(reports, threshold=0.5)
        similarities = [pair.similarity for pair in pairs]
        assert similarities == sorted(similarities, reverse=True)

    def test_huge_blocks_skipped(self):
        # Everyone shares the same items: block of 50 > max_block_size.
        reports = [report(i, ["COMMON"], ["EVENT"]) for i in range(50)]
        assert find_near_duplicates(reports, max_block_size=10) == []

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            find_near_duplicates([], threshold=0.0)


class TestResolve:
    def _trio(self):
        return [
            report(1, ["Q", "W"], ["X", "Y"]),
            report(2, ["Q", "W"], ["X", "Y", "Z"]),
            report(3, ["UNRELATED"], ["FEVER"]),
        ]

    def test_drop_later_keeps_first(self):
        kept, pairs = resolve_near_duplicates(self._trio(), threshold=0.7)
        assert pairs
        assert [r.case_id for r in kept] == ["c1", "c3"]

    def test_merge_unions_items(self):
        kept, _ = resolve_near_duplicates(
            self._trio(), threshold=0.7, policy=NearDuplicatePolicy.MERGE
        )
        merged = kept[0]
        assert merged.case_id == "c1"
        assert set(merged.adrs) == {"X", "Y", "Z"}

    def test_transitive_chains_collapse_to_one(self):
        reports = [
            report(1, ["Q", "W", "E"], ["X"]),
            report(2, ["Q", "W", "E"], ["X", "Y"]),
            report(3, ["Q", "W", "E"], ["X", "Y"]),
        ]
        kept, _ = resolve_near_duplicates(reports, threshold=0.6)
        assert [r.case_id for r in kept] == ["c1"]

    def test_no_duplicates_is_identity(self):
        reports = [report(i, [f"D{i}"], [f"A{i}"]) for i in range(5)]
        kept, pairs = resolve_near_duplicates(reports)
        assert pairs == []
        assert [r.case_id for r in kept] == [r.case_id for r in reports]
