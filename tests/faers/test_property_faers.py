"""Property-based tests of the FAERS substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faers.cleaning import ReportCleaner, normalize_drug_name
from repro.faers.dataset import ReportDataset
from repro.faers.parser import parse_quarter
from repro.faers.schema import CaseReport

term = st.text(
    alphabet=st.sampled_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ"),
    min_size=2,
    max_size=8,
)

reports_strategy = st.lists(
    st.builds(
        lambda i, drugs, adrs: CaseReport.build(f"case-{i}", drugs, adrs),
        i=st.integers(0, 10**6),
        drugs=st.sets(term, min_size=1, max_size=4),
        adrs=st.sets(term, min_size=1, max_size=3),
    ),
    min_size=1,
    max_size=25,
    unique_by=lambda report: report.case_id,
)


@settings(max_examples=40, deadline=None)
@given(reports=reports_strategy)
def test_cleaning_is_idempotent(reports):
    cleaner = ReportCleaner()
    once, _ = cleaner.clean(reports)
    twice, stats = cleaner.clean(once)
    assert [r.signature() for r in twice] == [r.signature() for r in once]
    assert stats.cases_merged == 0
    assert stats.drug_names_corrected == 0


@settings(max_examples=60, deadline=None)
@given(verbatim=st.text(min_size=0, max_size=30))
def test_drug_normalization_is_idempotent_and_clean(verbatim):
    once = normalize_drug_name(verbatim)
    assert normalize_drug_name(once) == once
    assert once == once.strip()
    assert "  " not in once


@settings(max_examples=25, deadline=None)
@given(reports=reports_strategy)
def test_parser_round_trip(reports, tmp_path_factory):
    """Writing reports in FAERS ASCII format and parsing them back
    preserves every (drugs, adrs) signature."""
    directory = tmp_path_factory.mktemp("quarter")
    demo_lines = ["primaryid$rept_cod"]
    drug_lines = ["primaryid$drugname"]
    reac_lines = ["primaryid$pt"]
    for report in reports:
        demo_lines.append(f"{report.case_id}$EXP")
        drug_lines.extend(f"{report.case_id}${d}" for d in report.drugs)
        reac_lines.extend(f"{report.case_id}${a}" for a in report.adrs)
    demo = directory / "demo.txt"
    drug = directory / "drug.txt"
    reac = directory / "reac.txt"
    demo.write_text("\n".join(demo_lines) + "\n", encoding="latin-1")
    drug.write_text("\n".join(drug_lines) + "\n", encoding="latin-1")
    reac.write_text("\n".join(reac_lines) + "\n", encoding="latin-1")

    parsed, stats = parse_quarter(demo, drug, reac)
    assert stats.reports == len(reports)
    assert sorted(r.signature() for r in parsed) == sorted(
        r.signature() for r in reports
    )


@settings(max_examples=40, deadline=None)
@given(reports=reports_strategy)
def test_encoding_preserves_report_contents(reports):
    encoded = ReportDataset(reports).encode()
    catalog = encoded.catalog
    for tid, report in enumerate(reports):
        labels = set(catalog.labels(encoded.database[tid]))
        # Collision suffixing may rename an ADR; strip the suffix back.
        restored = {label.removesuffix(" (REACTION)") for label in labels}
        assert restored == set(report.items)
        assert encoded.case_id_of(tid) == report.case_id
