"""Bounded-memory regression: the streaming ingest holds O(chunk), not O(N).

The 200k-report tier of the capacity promise, enforced on every CI run
(the 1M tier lives in ``benchmarks/bench_capacity.py``). The measurement
is tracemalloc's *transient* overhead — peak traced bytes minus bytes
still live once the pass returns — which isolates scratch memory from
the retained database: a hidden ``list()`` of the stream is freed by
return, so it shows up in (peak − end) at ~300 bytes per report, while
the honest chunked path's scratch is a few chunks regardless of N. A
canary test materializes the stream on purpose and asserts the
measurement *would* catch it, so the bound can't rot into a tautology.
"""

from __future__ import annotations

import tracemalloc

from repro.faers import SyntheticConfig, SyntheticFAERSGenerator
from repro.faers.ingest import StreamEncoder, iter_chunks

N_REPORTS = 200_000
CHUNK_SIZE = 4096

#: Transient tracemalloc overhead allowed for the full 200k pass. The
#: measured honest value is a few MiB (chunk scratch + cleaning sets);
#: a materialized 200k-report stream costs ~60 MiB transient.
TRANSIENT_LIMIT = 24 * 2**20


def capacity_config(n_reports: int) -> SyntheticConfig:
    return SyntheticConfig(
        n_reports=n_reports, n_drugs=2000, n_adrs=400, seed=20140, quarter="2014Q1"
    )


def transient_bytes(stream) -> tuple[int, int]:
    """(peak − end) traced bytes around one chunked ingest pass.

    The encoder stays alive across the end-reading, so its *retained*
    state — database, catalog, and the O(distinct-cases) dedup/merge
    maps the algorithm genuinely needs — counts as live memory, and
    (peak − end) isolates true scratch: chunk buffers, cleaning sets,
    mask-update churn, and any silently materialized copy of the
    stream (which is freed once the stream drains, so it lands squarely
    in the transient number).
    """
    encoder = StreamEncoder()
    tracemalloc.start()
    try:
        for chunk in iter_chunks(stream, CHUNK_SIZE):
            encoder.ingest_chunk(chunk)
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert encoder.stats.rows_in > 0
    return peak - current, encoder.stats.reports_out


def test_200k_stream_transient_memory_is_bounded():
    generator = SyntheticFAERSGenerator(capacity_config(N_REPORTS))
    transient, kept = transient_bytes(generator.iter_reports())
    assert kept > N_REPORTS * 0.8  # the pass actually did the work
    assert transient <= TRANSIENT_LIMIT, (
        f"streaming 200k reports held {transient / 2**20:.1f} MiB of "
        f"transient memory (limit {TRANSIENT_LIMIT / 2**20:.0f} MiB) — "
        "is the stream being materialized somewhere?"
    )


def test_transient_memory_does_not_scale_with_stream_length():
    """4× the reports must not mean anywhere near 4× the scratch."""
    small, _ = transient_bytes(
        SyntheticFAERSGenerator(capacity_config(50_000)).iter_reports()
    )
    large, _ = transient_bytes(
        SyntheticFAERSGenerator(capacity_config(N_REPORTS)).iter_reports()
    )
    # Allow generous slack for allocator noise; O(N) scratch would put
    # the ratio at ~4.
    assert large <= max(2.0 * small, 8 * 2**20), (
        f"transient scratch grew from {small / 2**20:.1f} MiB at 50k to "
        f"{large / 2**20:.1f} MiB at 200k — scaling with stream length"
    )


def test_canary_materialized_stream_trips_the_measurement():
    """Prove the detector detects: a list()-ed stream blows the bound."""
    generator = SyntheticFAERSGenerator(capacity_config(N_REPORTS))

    def materializing_stream():
        yield from list(generator.iter_reports())  # the sin being guarded

    transient, _ = transient_bytes(materializing_stream())
    assert transient > TRANSIENT_LIMIT, (
        "a fully materialized 200k stream stayed under the transient "
        "bound — the bound is too loose to catch regressions"
    )
