"""Tests for FAERS record dataclasses."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faers.schema import CaseReport, ReportType


class TestReportType:
    def test_from_code_known(self):
        assert ReportType.from_code("EXP") is ReportType.EXPEDITED
        assert ReportType.from_code("per") is ReportType.PERIODIC
        assert ReportType.from_code(" DIR ") is ReportType.DIRECT

    def test_from_code_unknown_raises(self):
        with pytest.raises(ValidationError):
            ReportType.from_code("BOGUS")


class TestCaseReportBuild:
    def test_terms_sorted_and_deduplicated(self):
        report = CaseReport.build("c1", ["B", "A", "A"], ["Y", "X"])
        assert report.drugs == ("A", "B")
        assert report.adrs == ("X", "Y")

    def test_whitespace_trimmed(self):
        report = CaseReport.build("c1", [" ASPIRIN "], ["PAIN"])
        assert report.drugs == ("ASPIRIN",)

    def test_empty_case_id_rejected(self):
        with pytest.raises(ValidationError):
            CaseReport.build("", ["A"], ["X"])

    def test_missing_drugs_rejected(self):
        with pytest.raises(ValidationError, match="at least one drug"):
            CaseReport.build("c1", [], ["X"])

    def test_missing_adrs_rejected(self):
        with pytest.raises(ValidationError):
            CaseReport.build("c1", ["A"], [])

    def test_bare_string_drugs_rejected(self):
        with pytest.raises(ValidationError, match="bare string"):
            CaseReport.build("c1", "ASPIRIN", ["X"])

    def test_blank_term_rejected(self):
        with pytest.raises(ValidationError):
            CaseReport.build("c1", ["  "], ["X"])

    def test_implausible_age_rejected(self):
        with pytest.raises(ValidationError, match="age"):
            CaseReport.build("c1", ["A"], ["X"], age=200.0)

    def test_valid_age_kept(self):
        report = CaseReport.build("c1", ["A"], ["X"], age=64.0)
        assert report.age == 64.0


class TestCaseReportViews:
    def test_items_union(self):
        report = CaseReport.build("c1", ["A"], ["X", "Y"])
        assert report.items == {"A", "X", "Y"}

    def test_signature_ignores_case_id(self):
        left = CaseReport.build("c1", ["A"], ["X"])
        right = CaseReport.build("c2", ["A"], ["X"])
        assert left.signature() == right.signature()

    def test_reports_are_hashable(self):
        report = CaseReport.build("c1", ["A"], ["X"])
        assert {report}
