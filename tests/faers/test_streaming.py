"""Streaming tier equivalence: lazy APIs are byte-identical to one-shot.

The capacity testbed's whole value rests on one promise: consuming the
pipeline lazily — :meth:`iter_reports`, :func:`iter_quarter`, an
``Iterable`` into :meth:`ReportCleaner.clean`, chunked
:func:`encode_stream` — produces *exactly* what the materialized path
produces, for any seed and any chunk size. These tests pin that promise:
reports, :class:`CleaningStats`, catalogs, transactions, case-id
linkage, and the exported result bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, MiningError
from repro.faers import (
    CaseReport,
    ReportCleaner,
    ReportDataset,
    SyntheticConfig,
    SyntheticFAERSGenerator,
    encode_stream,
    iter_chunks,
    iter_quarter,
    iter_year,
    parse_quarter,
    quarter_sequence,
    write_quarter_files,
)
from repro.faers.ingest import StreamEncoder
from repro.faers.synthetic import generate_year
from repro.mining.transactions import ItemCatalog

SEED_GRID = (1, 7, 42, 2014, 99991)


def small_config(seed: int, n_reports: int = 1200) -> SyntheticConfig:
    return SyntheticConfig(
        n_reports=n_reports, n_drugs=80, n_adrs=30, seed=seed, quarter="2014Q1"
    )


# --- generator restartability & lazy identity --------------------------


@pytest.mark.parametrize("seed", SEED_GRID)
def test_iter_reports_matches_generate(seed):
    generator = SyntheticFAERSGenerator(small_config(seed))
    assert list(generator.iter_reports()) == generator.generate()


@pytest.mark.parametrize("seed", SEED_GRID)
def test_generate_is_restartable(seed):
    """Every consumption replays the same stream — no hidden RNG drift."""
    generator = SyntheticFAERSGenerator(small_config(seed, n_reports=300))
    first = generator.generate()
    assert generator.generate() == first
    assert list(generator.iter_reports()) == first


def test_interleaved_iterators_are_independent():
    generator = SyntheticFAERSGenerator(small_config(5, n_reports=100))
    a, b = generator.iter_reports(), generator.iter_reports()
    merged_a = [next(a) for _ in range(50)]
    merged_b = list(b)
    merged_a.extend(a)
    assert merged_a == merged_b


def test_iter_year_matches_generate_year():
    streamed = list(iter_year(scale=0.01))
    chained = [r for q in sorted(generate_year(scale=0.01)) for r in generate_year(scale=0.01)[q]]
    assert streamed == chained


def test_quarter_sequence_labels_roll_over_years():
    labels = [q for q, _ in quarter_sequence(6, reports_per_quarter=10)]
    assert labels == ["2014Q1", "2014Q2", "2014Q3", "2014Q4", "2015Q1", "2015Q2"]


def test_quarter_sequence_rejects_zero_quarters():
    with pytest.raises(ConfigError):
        list(quarter_sequence(0))


# --- cleaning accepts generators, preserves first-seen order -----------


@pytest.mark.parametrize("seed", SEED_GRID)
def test_clean_generator_matches_list(seed):
    generator = SyntheticFAERSGenerator(small_config(seed))
    from_list, stats_list = ReportCleaner().clean(generator.generate())
    from_stream, stats_stream = ReportCleaner().clean(generator.iter_reports())
    assert from_stream == from_list
    assert stats_stream == stats_list


def test_clean_first_seen_order_contract():
    """A case claims its slot at its first usable row, merges in place."""
    rows = [
        CaseReport.build("B", {"DRUG1"}, {"ADR1"}),
        CaseReport.build("A", {"DRUG2"}, {"ADR2"}),
        CaseReport.build("B", {"DRUG3"}, {"ADR3"}),  # follow-up: merges, no move
        CaseReport.build("C", {"DRUG4"}, {"ADR4"}),
    ]
    cleaned, stats = ReportCleaner().clean(iter(rows))
    assert [r.case_id for r in cleaned] == ["B", "A", "C"]
    assert cleaned[0].drugs == ("DRUG1", "DRUG3")
    assert stats.cases_merged == 1


def test_parse_quarter_first_seen_order_under_generator(tmp_path):
    generator = SyntheticFAERSGenerator(small_config(3, n_reports=200))
    files = write_quarter_files(generator.generate(), tmp_path)
    streamed = list(
        iter_quarter(files.demo, files.drug, files.reac, quarter="2014Q1")
    )
    materialized, stats = parse_quarter(
        files.demo, files.drug, files.reac, quarter="2014Q1"
    )
    assert streamed == materialized
    assert stats.reports == len(materialized)
    # First-seen DEMO-row order: case ids come out in file order.
    demo_order = []
    seen = set()
    with open(files.demo, encoding="latin-1") as handle:
        header = handle.readline().rstrip("\n").split("$")
        key_col = header.index("primaryid")
        for line in handle:
            key = line.split("$")[key_col].strip()
            if key and key not in seen:
                seen.add(key)
                demo_order.append(key)
    parsed_ids = [r.case_id for r in materialized]
    assert parsed_ids == [k for k in demo_order if k in set(parsed_ids)]


# --- streaming encode equivalence --------------------------------------


def one_shot(reports):
    cleaned, stats = ReportCleaner().clean(list(reports))
    return ReportDataset(cleaned, quarter="2014Q1").encode(), stats


def assert_equivalent(result, encoded, stats):
    assert list(result.database) == list(encoded.database)
    assert list(result.catalog) == list(encoded.catalog)
    assert [result.catalog.kind_of(i) for i in range(len(result.catalog))] == [
        encoded.catalog.kind_of(i) for i in range(len(encoded.catalog))
    ]
    assert result.case_ids == [
        encoded.case_id_of(t) for t in range(len(encoded.database))
    ]
    assert result.cleaning_stats == stats
    assert result.database.item_masks() == encoded.database.item_masks()


@pytest.mark.parametrize("seed", SEED_GRID)
@pytest.mark.parametrize("chunk_size", (1, 97, 4096))
def test_encode_stream_matches_one_shot(seed, chunk_size):
    generator = SyntheticFAERSGenerator(small_config(seed))
    encoded, stats = one_shot(generator.generate())
    result = encode_stream(generator.iter_reports(), chunk_size=chunk_size)
    assert_equivalent(result, encoded, stats)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    chunk_size=st.integers(min_value=1, max_value=700),
)
def test_encode_stream_chunk_size_is_invisible(seed, chunk_size):
    """Property: any chunking of any stream gives the one-shot result."""
    generator = SyntheticFAERSGenerator(small_config(seed, n_reports=400))
    encoded, stats = one_shot(generator.generate())
    result = encode_stream(generator.iter_reports(), chunk_size=chunk_size)
    assert_equivalent(result, encoded, stats)


def test_encode_stream_list_input_unchanged():
    generator = SyntheticFAERSGenerator(small_config(11))
    reports = generator.generate()
    encoded, stats = one_shot(reports)
    result = encode_stream(reports, chunk_size=256)
    assert_equivalent(result, encoded, stats)
    assert reports == generator.generate()  # input not consumed/mutated


def test_encode_stream_collision_repair():
    """A drug arriving after its colliding ADR repairs the catalog in place."""
    rows = [
        CaseReport.build("c1", {"ASPIRIN"}, {"NAUSEA", "WARFARIN"}),
        CaseReport.build("c2", {"WARFARIN"}, {"HEADACHE"}),
        CaseReport.build("c3", {"ASPIRIN", "WARFARIN"}, {"WARFARIN", "RASH"}),
    ]
    encoded, stats = one_shot(rows)
    for chunk_size in (1, 2, 10):
        result = encode_stream(iter(rows), chunk_size=chunk_size)
        assert_equivalent(result, encoded, stats)
    assert "WARFARIN (REACTION)" in encode_stream(iter(rows)).catalog


def test_encode_stream_follow_up_merges_in_place():
    rows = [
        CaseReport.build("c1", {"DRUG1"}, {"ADR1"}),
        CaseReport.build("c2", {"DRUG2"}, {"ADR2"}),
        CaseReport.build("c1", {"DRUG3"}, {"ADR3"}),  # follow-up for c1
    ]
    result = encode_stream(iter(rows), chunk_size=1)
    assert result.case_ids == ["c1", "c2"]
    labels = {result.catalog.label(i) for i in result.database[0]}
    assert labels == {"DRUG1", "DRUG3", "ADR1", "ADR3"}
    assert result.cleaning_stats.cases_merged == 1


def test_encode_stream_keep_reports_matches_cleaner():
    generator = SyntheticFAERSGenerator(small_config(13, n_reports=300))
    cleaned, _ = ReportCleaner().clean(generator.generate())
    result = encode_stream(generator.iter_reports(), chunk_size=64, keep_reports=True)
    assert result.reports == cleaned
    # Default leaves reports empty — that's the memory contract.
    assert encode_stream(generator.iter_reports()).reports == []


def test_iter_chunks_shapes():
    chunks = list(iter_chunks(iter(range(10)), 4))
    assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert list(iter_chunks(iter(()), 4)) == []
    with pytest.raises(ConfigError):
        list(iter_chunks(iter(range(3)), 0))


def test_stream_encoder_incremental_chunks_accumulate():
    generator = SyntheticFAERSGenerator(small_config(17, n_reports=500))
    encoded, stats = one_shot(generator.generate())
    encoder = StreamEncoder()
    for chunk in iter_chunks(generator.iter_reports(), 128):
        encoder.ingest_chunk(chunk)
    result = encoder.finish()
    assert result.n_chunks == 4
    assert_equivalent(result, encoded, stats)


# --- near-dedup accepts generators, keeps input order -------------------


def test_near_duplicates_generator_matches_list():
    from repro.faers import find_near_duplicates, resolve_near_duplicates

    generator = SyntheticFAERSGenerator(small_config(23, n_reports=400))
    reports = generator.generate()
    assert find_near_duplicates(generator.iter_reports(), min_items=3) == (
        find_near_duplicates(reports, min_items=3)
    )
    kept_stream, pairs_stream = resolve_near_duplicates(
        generator.iter_reports(), min_items=3
    )
    kept_list, pairs_list = resolve_near_duplicates(reports, min_items=3)
    assert kept_stream == kept_list
    assert pairs_stream == pairs_list
    # Survivors keep input order: the dropped index of a pair is always
    # the later stream position.
    positions = {id(r): i for i, r in enumerate(reports)}
    kept_positions = [positions[id(r)] for r in kept_list if id(r) in positions]
    assert kept_positions == sorted(kept_positions)


# --- catalog rename (the collision-repair primitive) --------------------


def test_rename_label_keeps_id_and_kind():
    catalog = ItemCatalog()
    item = catalog.add("NAUSEA", "adr")
    catalog.add("ASPIRIN", "drug")
    catalog.rename_label(item, "NAUSEA (REACTION)")
    assert catalog.label(item) == "NAUSEA (REACTION)"
    assert catalog.kind_of(item) == "adr"
    assert catalog.id("NAUSEA (REACTION)") == item
    assert "NAUSEA" not in catalog


def test_rename_label_rejects_existing_label_and_bad_id():
    catalog = ItemCatalog()
    a = catalog.add("A")
    catalog.add("B")
    with pytest.raises(MiningError):
        catalog.rename_label(a, "B")
    with pytest.raises(Exception):
        catalog.rename_label(99, "C")
    catalog.rename_label(a, "A")  # no-op rename is fine
    assert catalog.label(a) == "A"
