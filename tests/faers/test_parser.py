"""Tests for the FAERS quarterly-file parser (against written fixtures)."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.faers.parser import parse_quarter, read_delimited
from repro.faers.schema import ReportType


def write(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="latin-1")
    return path


@pytest.fixture
def modern_quarter(tmp_path):
    """A tiny modern-layout (primaryid) quarter."""
    demo = write(
        tmp_path / "DEMO14Q1.txt",
        [
            "primaryid$caseid$rept_cod$age$age_cod$sex$occr_country",
            "1001$1$EXP$64$YR$F$US",
            "1002$2$PER$$YR$M$GB",
            "1003$3$EXP$6$MON$F$US",
            "1004$4$EXP$50$YR$M$DE",
        ],
    )
    drug = write(
        tmp_path / "DRUG14Q1.txt",
        [
            "primaryid$drug_seq$role_cod$drugname",
            "1001$1$PS$ASPIRIN",
            "1001$2$SS$WARFARIN",
            "1002$1$PS$NEXIUM",
            "1003$1$PS$IBUPROFEN",
            "1004$1$PS$PREDNISONE",  # case 1004 has a drug but no reaction
            "9999$1$PS$GHOST",  # orphan: no DEMO row
        ],
    )
    reac = write(
        tmp_path / "REAC14Q1.txt",
        [
            "primaryid$pt",
            "1001$HAEMORRHAGE",
            "1002$OSTEOPOROSIS",
            "1003$PAIN",
            "1003$ASTHMA",
            "9998$GHOST PAIN",  # orphan
        ],
    )
    return demo, drug, reac


class TestReadDelimited:
    def test_rows_as_dicts(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$b$c", "1$2$3", "4$5$6"])
        rows = list(read_delimited(path))
        assert rows == [
            {"a": "1", "b": "2", "c": "3"},
            {"a": "4", "b": "5", "c": "6"},
        ]

    def test_header_lowercased(self, tmp_path):
        path = write(tmp_path / "f.txt", ["PRIMARYID$PT", "1$X"])
        assert list(read_delimited(path)) == [{"primaryid": "1", "pt": "X"}]

    def test_short_rows_padded(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$b$c", "1$2"])
        assert list(read_delimited(path)) == [{"a": "1", "b": "2", "c": ""}]

    def test_long_rows_raise(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$b", "1$2$3"])
        with pytest.raises(ParseError, match="fields"):
            list(read_delimited(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$b", "1$2", "", "3$4"])
        assert len(list(read_delimited(path))) == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("")
        with pytest.raises(ParseError, match="empty"):
            list(read_delimited(path))

    def test_duplicate_columns_raise(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$a", "1$2"])
        with pytest.raises(ParseError, match="duplicate"):
            list(read_delimited(path))

    def test_error_carries_location(self, tmp_path):
        path = write(tmp_path / "f.txt", ["a$b", "1$2$3"])
        with pytest.raises(ParseError) as excinfo:
            list(read_delimited(path))
        assert excinfo.value.line_number == 2
        assert str(path) in str(excinfo.value)


class TestParseQuarter:
    def test_joins_three_files(self, modern_quarter):
        reports, stats = parse_quarter(*modern_quarter, quarter="2014Q1")
        assert stats.reports == len(reports) == 3
        by_id = {r.case_id: r for r in reports}
        assert by_id["1001"].drugs == ("ASPIRIN", "WARFARIN")
        assert by_id["1001"].adrs == ("HAEMORRHAGE",)
        assert by_id["1003"].adrs == ("ASTHMA", "PAIN")

    def test_demographics_parsed(self, modern_quarter):
        reports, _ = parse_quarter(*modern_quarter, quarter="2014Q1")
        by_id = {r.case_id: r for r in reports}
        assert by_id["1001"].age == 64.0
        assert by_id["1001"].sex == "F"
        assert by_id["1001"].country == "US"
        assert by_id["1003"].age == pytest.approx(0.5)  # 6 months

    def test_quarter_stamped(self, modern_quarter):
        reports, _ = parse_quarter(*modern_quarter, quarter="2014Q1")
        assert all(r.quarter == "2014Q1" for r in reports)

    def test_report_type_filter(self, modern_quarter):
        reports, _ = parse_quarter(
            *modern_quarter,
            quarter="2014Q1",
            report_types=frozenset({ReportType.EXPEDITED}),
        )
        assert {r.case_id for r in reports} == {"1001", "1003"}

    def test_orphan_rows_counted(self, modern_quarter):
        _, stats = parse_quarter(*modern_quarter)
        assert stats.orphan_drug_rows == 1
        assert stats.orphan_reac_rows == 1

    def test_case_without_reactions_skipped(self, modern_quarter):
        _, stats = parse_quarter(*modern_quarter)
        assert stats.cases_without_reactions == 1  # case 1004

    def test_legacy_isr_layout(self, tmp_path):
        demo = write(
            tmp_path / "DEMO12Q1.TXT",
            ["ISR$CASE$rept_cod", "77$1$30DAY"],
        )
        drug = write(tmp_path / "DRUG12Q1.TXT", ["ISR$DRUGNAME", "77$ASPIRIN"])
        reac = write(tmp_path / "REAC12Q1.TXT", ["ISR$PT", "77$PAIN"])
        reports, _ = parse_quarter(demo, drug, reac)
        assert len(reports) == 1
        assert reports[0].report_type is ReportType.EXPEDITED  # 30DAY → EXP

    def test_missing_key_column_raises(self, tmp_path):
        demo = write(tmp_path / "DEMO.txt", ["caseid$rept_cod", "1$EXP"])
        drug = write(tmp_path / "DRUG.txt", ["primaryid$drugname", "1$A"])
        reac = write(tmp_path / "REAC.txt", ["primaryid$pt", "1$X"])
        with pytest.raises(ParseError, match="case-key"):
            parse_quarter(demo, drug, reac)

    def test_later_case_version_supersedes(self, tmp_path):
        demo = write(
            tmp_path / "DEMO.txt",
            ["primaryid$rept_cod$sex", "1$EXP$F", "1$EXP$M"],
        )
        drug = write(tmp_path / "DRUG.txt", ["primaryid$drugname", "1$A"])
        reac = write(tmp_path / "REAC.txt", ["primaryid$pt", "1$X"])
        reports, _ = parse_quarter(demo, drug, reac)
        assert len(reports) == 1
        assert reports[0].sex == "M"

    def test_unparseable_age_is_none(self, tmp_path):
        demo = write(
            tmp_path / "DEMO.txt",
            ["primaryid$rept_cod$age$age_cod", "1$EXP$UNK$YR"],
        )
        drug = write(tmp_path / "DRUG.txt", ["primaryid$drugname", "1$A"])
        reac = write(tmp_path / "REAC.txt", ["primaryid$pt", "1$X"])
        reports, _ = parse_quarter(demo, drug, reac)
        assert reports[0].age is None


class TestEventDateParsing:
    def test_full_date_parsed(self, tmp_path):
        demo = write(
            tmp_path / "DEMO.txt",
            ["primaryid$rept_cod$event_dt", "1$EXP$20140317"],
        )
        drug = write(tmp_path / "DRUG.txt", ["primaryid$drugname", "1$A"])
        reac = write(tmp_path / "REAC.txt", ["primaryid$pt", "1$X"])
        reports, _ = parse_quarter(demo, drug, reac)
        assert reports[0].event_date == "2014-03-17"

    @pytest.mark.parametrize("raw", ["201403", "2014", "notadate", "20141345"])
    def test_partial_or_malformed_dates_become_none(self, tmp_path, raw):
        demo = write(
            tmp_path / "DEMO.txt",
            ["primaryid$rept_cod$event_dt", f"1$EXP${raw}"],
        )
        drug = write(tmp_path / "DRUG.txt", ["primaryid$drugname", "1$A"])
        reac = write(tmp_path / "REAC.txt", ["primaryid$pt", "1$X"])
        reports, _ = parse_quarter(demo, drug, reac)
        assert reports[0].event_date is None
