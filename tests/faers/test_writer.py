"""Tests for the FAERS quarter writer (round-trips against the parser)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.parser import parse_quarter
from repro.faers.schema import CaseReport, ReportType
from repro.faers.writer import quarter_file_names, write_quarter_files


def sample_reports():
    return [
        CaseReport.build(
            "1001",
            ["ASPIRIN", "WARFARIN"],
            ["HAEMORRHAGE"],
            quarter="2014Q1",
            age=64.0,
            sex="F",
            country="US",
        ),
        CaseReport.build(
            "1002",
            ["NEXIUM"],
            ["OSTEOPOROSIS", "PAIN"],
            quarter="2014Q1",
            report_type=ReportType.PERIODIC,
        ),
    ]


class TestQuarterFileNames:
    def test_canonical_names(self):
        assert quarter_file_names("2014Q1") == (
            "DEMO14Q1.txt",
            "DRUG14Q1.txt",
            "REAC14Q1.txt",
        )

    def test_invalid_label_rejected(self):
        for label in ("2014", "14Q1", "2014q1", "2014X1"):
            with pytest.raises(ConfigError):
                quarter_file_names(label)


class TestWriteQuarterFiles:
    def test_files_created(self, tmp_path):
        files = write_quarter_files(sample_reports(), tmp_path)
        assert files.demo.name == "DEMO14Q1.txt"
        assert all(path.exists() for path in files.as_tuple())

    def test_round_trip_via_parser(self, tmp_path):
        reports = sample_reports()
        files = write_quarter_files(reports, tmp_path)
        parsed, stats = parse_quarter(*files.as_tuple(), quarter="2014Q1")
        assert stats.reports == 2
        by_id = {report.case_id: report for report in parsed}
        assert by_id["1001"].drugs == ("ASPIRIN", "WARFARIN")
        assert by_id["1001"].age == 64.0
        assert by_id["1001"].sex == "F"
        assert by_id["1002"].report_type is ReportType.PERIODIC
        assert by_id["1002"].adrs == ("OSTEOPOROSIS", "PAIN")

    def test_quarter_inferred_from_reports(self, tmp_path):
        files = write_quarter_files(sample_reports(), tmp_path)
        assert "14Q1" in files.demo.name

    def test_explicit_quarter_overrides(self, tmp_path):
        files = write_quarter_files(sample_reports(), tmp_path, quarter="2015Q3")
        assert files.demo.name == "DEMO15Q3.txt"

    def test_mixed_quarters_require_explicit_label(self, tmp_path):
        mixed = [
            CaseReport.build("a", ["D"], ["X"], quarter="2014Q1"),
            CaseReport.build("b", ["D"], ["X", "Y"], quarter="2014Q2"),
        ]
        with pytest.raises(ConfigError, match="quarter"):
            write_quarter_files(mixed, tmp_path)
        write_quarter_files(mixed, tmp_path, quarter="2014Q1")

    def test_empty_reports_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_quarter_files([], tmp_path)

    def test_delimiter_in_case_id_rejected(self, tmp_path):
        bad = [CaseReport.build("a$b", ["D"], ["X"], quarter="2014Q1")]
        with pytest.raises(ConfigError, match="delimiter"):
            write_quarter_files(bad, tmp_path)


class TestEventDateRoundTrip:
    def test_event_date_survives_write_parse(self, tmp_path):
        reports = [
            CaseReport.build(
                "42",
                ["ASPIRIN"],
                ["PAIN"],
                quarter="2014Q1",
                event_date="2014-02-17",
            )
        ]
        files = write_quarter_files(reports, tmp_path)
        parsed, _ = parse_quarter(*files.as_tuple())
        assert parsed[0].event_date == "2014-02-17"

    def test_missing_event_date_round_trips_as_none(self, tmp_path):
        files = write_quarter_files(sample_reports(), tmp_path)
        parsed, _ = parse_quarter(*files.as_tuple())
        assert all(report.event_date is None for report in parsed)
