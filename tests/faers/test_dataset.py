"""Tests for ReportDataset and its transaction encoding."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset, stats_table
from repro.faers.schema import CaseReport, ReportType


def make_reports():
    return [
        CaseReport.build("c1", ["A", "B"], ["X"], quarter="2014Q1"),
        CaseReport.build("c2", ["A"], ["X", "Y"], quarter="2014Q1"),
        CaseReport.build(
            "c3", ["C"], ["Z"], quarter="2014Q1", report_type=ReportType.PERIODIC
        ),
    ]


class TestReportDataset:
    def test_len_iter_getitem(self):
        dataset = ReportDataset(make_reports())
        assert len(dataset) == 3
        assert dataset[0].case_id == "c1"
        assert [r.case_id for r in dataset] == ["c1", "c2", "c3"]

    def test_duplicate_case_ids_rejected(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"]),
            CaseReport.build("c1", ["B"], ["Y"]),
        ]
        with pytest.raises(ConfigError, match="duplicate case ids"):
            ReportDataset(reports)

    def test_quarter_inferred_when_uniform(self):
        assert ReportDataset(make_reports()).quarter == "2014Q1"

    def test_quarter_not_inferred_when_mixed(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"], quarter="2014Q1"),
            CaseReport.build("c2", ["A"], ["X", "Y"], quarter="2014Q2"),
        ]
        assert ReportDataset(reports).quarter == ""

    def test_stats_row(self):
        stats = ReportDataset(make_reports()).stats()
        assert stats.n_reports == 3
        assert stats.n_drugs == 3
        assert stats.n_adrs == 3
        assert stats.quarter == "2014Q1"

    def test_filter_report_type(self):
        dataset = ReportDataset(make_reports())
        expedited = dataset.filter_report_type(ReportType.EXPEDITED)
        assert {r.case_id for r in expedited} == {"c1", "c2"}

    def test_filter_quarter(self):
        reports = [
            CaseReport.build("c1", ["A"], ["X"], quarter="2014Q1"),
            CaseReport.build("c2", ["A"], ["X", "Y"], quarter="2014Q2"),
        ]
        filtered = ReportDataset(reports).filter_quarter("2014Q2")
        assert len(filtered) == 1
        assert filtered.quarter == "2014Q2"

    def test_mentioning_drug(self):
        dataset = ReportDataset(make_reports())
        assert {r.case_id for r in dataset.mentioning_drug("A")} == {"c1", "c2"}
        assert len(dataset.mentioning_drug("GHOST")) == 0

    def test_stats_table_multiquarter(self):
        q1 = ReportDataset([CaseReport.build("a", ["D"], ["X"], quarter="2014Q1")])
        q2 = ReportDataset([CaseReport.build("b", ["D"], ["X"], quarter="2014Q2")])
        rows = stats_table([q1, q2])
        assert [row.quarter for row in rows] == ["2014Q1", "2014Q2"]


class TestEncoding:
    def test_kinds_assigned(self):
        encoded = ReportDataset(make_reports()).encode()
        catalog = encoded.catalog
        assert catalog.kind_of(catalog.id("A")) == "drug"
        assert catalog.kind_of(catalog.id("X")) == "adr"

    def test_transactions_match_reports(self):
        encoded = ReportDataset(make_reports()).encode()
        catalog = encoded.catalog
        assert encoded.database[0] == catalog.encode(["A", "B", "X"])

    def test_case_id_linkage(self):
        encoded = ReportDataset(make_reports()).encode()
        assert encoded.case_id_of(1) == "c2"
        assert encoded.report_of(2).drugs == ("C",)

    def test_supporting_reports(self):
        encoded = ReportDataset(make_reports()).encode()
        catalog = encoded.catalog
        supporting = encoded.supporting_reports(catalog.encode(["A", "X"]))
        assert [r.case_id for r in supporting] == ["c1", "c2"]

    def test_drug_adr_label_collision_disambiguated(self):
        # "PAIN" as both a (bizarre) drug name and an ADR term.
        reports = [
            CaseReport.build("c1", ["PAIN"], ["NAUSEA"]),
            CaseReport.build("c2", ["ASPIRIN"], ["PAIN"]),
        ]
        encoded = ReportDataset(reports).encode()
        catalog = encoded.catalog
        assert catalog.kind_of(catalog.id("PAIN")) == "drug"
        assert catalog.kind_of(catalog.id("PAIN (REACTION)")) == "adr"

    def test_parallel_sequence_mismatch_rejected(self):
        from repro.faers.dataset import EncodedDataset

        encoded = ReportDataset(make_reports()).encode()
        with pytest.raises(ConfigError, match="parallel"):
            EncodedDataset(encoded.database, ("only-one",), encoded._reports)
