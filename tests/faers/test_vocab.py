"""Tests for the drug/ADR vocabularies and name synthesizers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.vocab import (
    ADR_VOCABULARY,
    DRUG_VOCABULARY,
    adr_universe,
    drug_universe,
    synthesize_adr_term,
    synthesize_drug_name,
)


class TestNamedVocabulary:
    def test_paper_drugs_present(self):
        for name in ("ASPIRIN", "WARFARIN", "XOLAIR", "PROGRAF", "METAMIZOLE"):
            assert name in DRUG_VOCABULARY

    def test_paper_adrs_present(self):
        for term in ("ASTHMA", "OSTEOPOROSIS", "ACUTE RENAL FAILURE", "HAEMORRHAGE"):
            assert term in ADR_VOCABULARY

    def test_no_duplicates(self):
        assert len(set(DRUG_VOCABULARY)) == len(DRUG_VOCABULARY)
        assert len(set(ADR_VOCABULARY)) == len(ADR_VOCABULARY)

    def test_vocabularies_disjoint(self):
        assert not set(DRUG_VOCABULARY) & set(ADR_VOCABULARY)


class TestSynthesizers:
    def test_deterministic(self):
        assert synthesize_drug_name(123) == synthesize_drug_name(123)
        assert synthesize_adr_term(45) == synthesize_adr_term(45)

    def test_distinct_over_base_space(self):
        names = {synthesize_drug_name(i) for i in range(2000)}
        assert len(names) == 2000

    def test_cycle_suffix_beyond_base_space(self):
        # 9600 base drug names; index 9600 wraps with a series suffix.
        wrapped = synthesize_drug_name(9600)
        assert wrapped.endswith(" 2")

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            synthesize_drug_name(-1)
        with pytest.raises(ConfigError):
            synthesize_adr_term(-1)


class TestUniverses:
    def test_universe_starts_with_named_vocabulary(self):
        universe = drug_universe(40)
        assert universe[: len(DRUG_VOCABULARY)] == DRUG_VOCABULARY

    def test_universe_size_and_uniqueness(self):
        for size in (10, 100, 1000):
            universe = drug_universe(size)
            assert len(universe) == size
            assert len(set(universe)) == size

    def test_adr_universe_unique(self):
        universe = adr_universe(500)
        assert len(set(universe)) == 500

    def test_small_universe_truncates_named(self):
        assert drug_universe(3) == DRUG_VOCABULARY[:3]

    def test_zero_size(self):
        assert drug_universe(0) == ()

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            adr_universe(-5)

    def test_universes_are_prefix_stable(self):
        # Growing the universe never reshuffles existing names — quarters
        # with different sizes still share item identities.
        small = drug_universe(200)
        large = drug_universe(400)
        assert large[:200] == small
