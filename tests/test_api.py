"""Public-API surface guard.

Every package's ``__all__`` must resolve to a real attribute, every
public callable/class must carry a docstring, and the top-level
re-exports must stay importable — the cheapest way to catch a refactor
that silently breaks the documented surface.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.faers",
    "repro.knowledge",
    "repro.mining",
    "repro.signals",
    "repro.userstudy",
    "repro.viz",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    exported = importlib.import_module(package_name).__all__
    assert len(set(exported)) == len(exported), f"duplicates in {package_name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        attribute = getattr(package, name)
        if inspect.isclass(attribute) or inspect.isfunction(attribute):
            if not (attribute.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package_name}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstring_present(package_name):
    package = importlib.import_module(package_name)
    assert (package.__doc__ or "").strip(), package_name


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_cli_module_importable():
    from repro import cli

    parser = cli.build_parser()
    assert parser.prog == "mediar"


def test_exception_hierarchy_rooted():
    from repro import errors

    for name in ("ConfigError", "MiningError", "ParseError", "ValidationError"):
        assert issubclass(getattr(errors, name), errors.ReproError)
