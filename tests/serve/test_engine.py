"""The transport-agnostic query engine: pagination, sorting, filters, cache."""

from __future__ import annotations

import pytest

from repro.errors import BadQueryError, NotFoundError
from repro.serve.indexes import sort_value

from tests.serve.conftest import RUN_NAME


class TestPagination:
    def test_envelope_shape(self, engine, snapshot):
        page = engine.associations(limit=5)
        assert page["run"] == RUN_NAME
        assert page["total"] == snapshot.n_clusters
        assert page["count"] == len(page["items"]) == min(5, snapshot.n_clusters)
        assert page["offset"] == 0 and page["limit"] == 5

    def test_offset_windows_are_disjoint_and_exhaustive(self, engine, snapshot):
        seen = []
        offset = 0
        while True:
            page = engine.associations(limit=7, offset=offset, sort="support")
            seen.extend(item["id"] for item in page["items"])
            if offset + page["count"] >= page["total"]:
                break
            offset += 7
        assert len(seen) == len(set(seen)) == snapshot.n_clusters

    def test_offset_past_end_is_empty_not_error(self, engine, snapshot):
        page = engine.associations(offset=snapshot.n_clusters + 100)
        assert page["count"] == 0 and page["items"] == []

    def test_limit_validation(self, engine):
        with pytest.raises(BadQueryError, match="limit"):
            engine.associations(limit=0)
        with pytest.raises(BadQueryError, match="limit"):
            engine.associations(limit=10_000)
        with pytest.raises(BadQueryError, match="offset"):
            engine.associations(offset=-1)
        with pytest.raises(BadQueryError, match="integer"):
            engine.associations(limit="many")


class TestSorting:
    @pytest.mark.parametrize("key", ["support", "confidence", "lift"])
    def test_descending_by_default(self, engine, key):
        page = engine.associations(sort=key, limit=500)
        values = [item[key] for item in page["items"]]
        assert values == sorted(values, reverse=True)

    def test_ascending_order(self, engine):
        page = engine.associations(sort="lift", order="asc", limit=500)
        values = [item["lift"] for item in page["items"]]
        assert values == sorted(values)

    def test_score_sort_keys(self, engine):
        page = engine.clusters(sort="exclusiveness_confidence", limit=500)
        values = [
            item["scores"]["exclusiveness_confidence"] for item in page["items"]
        ]
        assert values == sorted(values, reverse=True)

    def test_unknown_sort_rejected(self, engine):
        with pytest.raises(BadQueryError, match="unknown sort key"):
            engine.associations(sort="astrology")

    def test_unknown_order_rejected(self, engine):
        with pytest.raises(BadQueryError, match="order"):
            engine.associations(order="sideways")


class TestFilters:
    def test_drug_filter_uses_index_and_matches_scan(self, engine, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        page = engine.associations(drug=drug, limit=500)
        expected = {r["id"] for r in snapshot.records if drug in r["drugs"]}
        got = {item["cluster_id"] for item in page["items"]}
        assert got == expected and page["total"] == len(expected)

    def test_drug_and_adr_filters_intersect(self, engine, snapshot):
        record = snapshot.records[0]
        drug, adr = record["drugs"][0], record["adrs"][0]
        page = engine.clusters(drug=drug, adr=adr, limit=500)
        expected = {
            r["id"]
            for r in snapshot.records
            if drug in r["drugs"] and adr in r["adrs"]
        }
        assert {item["id"] for item in page["items"]} == expected

    def test_unknown_drug_filter_is_empty_not_error(self, engine):
        page = engine.associations(drug="NOT A DRUG")
        assert page["total"] == 0 and page["items"] == []

    def test_numeric_floors(self, engine, snapshot):
        values = sorted(r["support"] for r in snapshot.records)
        floor = values[len(values) // 2]
        page = engine.associations(min_support=floor, limit=500)
        assert page["total"] == sum(
            1 for r in snapshot.records if r["support"] >= floor
        )
        assert all(item["support"] >= floor for item in page["items"])

    def test_numeric_floor_validation(self, engine):
        with pytest.raises(BadQueryError, match="min_lift"):
            engine.associations(min_lift="high")

    def test_unknown_parameter_rejected(self, engine):
        with pytest.raises(BadQueryError, match="unknown parameters"):
            engine.associations(frobnicate=1)


class TestProjections:
    def test_association_view_flat(self, engine):
        item = engine.associations(limit=1)["items"][0]
        assert item["id"].startswith("assoc-")
        assert item["cluster_id"].startswith("mcac-")
        assert item["id"].split("-", 1)[1] == item["cluster_id"].split("-", 1)[1]
        assert "context" not in item

    def test_cluster_view_has_context(self, engine):
        item = engine.clusters(limit=1)["items"][0]
        assert item["id"].startswith("mcac-")
        assert item["association_id"].startswith("assoc-")
        assert isinstance(item["context"], list) and item["context"]
        for rule in item["context"]:
            assert set(rule) >= {"drugs", "cardinality", "confidence", "lift"}

    def test_single_cluster_lookup_and_assoc_alias(self, engine, snapshot):
        record = snapshot.records[0]
        direct = engine.cluster(record["id"])
        alias = engine.cluster("assoc-" + record["id"].split("-", 1)[1])
        assert direct == alias
        assert direct["run"] == RUN_NAME
        assert direct["drugs"] == list(record["drugs"])

    def test_unknown_cluster_is_not_found(self, engine):
        with pytest.raises(NotFoundError, match="unknown cluster"):
            engine.cluster("mcac-ffffffffffff")


class TestDrugProfile:
    def test_profile_counts(self, engine, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        profile = engine.drug(drug)
        expected = [r for r in snapshot.records if drug in r["drugs"]]
        assert profile["n_clusters"] == len(expected)
        assert len(profile["cluster_ids"]) == len(expected)
        assert all(p["drug"] != drug for p in profile["partners"])
        # cluster ids come best-first under the default sort
        ranked = sorted(
            (r["id"] for r in expected),
            key=lambda cid: -sort_value(
                snapshot.records[snapshot.indexes.by_id[cid]],
                "exclusiveness_confidence",
            ),
        )
        assert set(profile["cluster_ids"]) == set(ranked)

    def test_unknown_drug_is_not_found(self, engine):
        with pytest.raises(NotFoundError, match="unknown drug"):
            engine.drug("NOT A DRUG")


class TestSearch:
    def test_prefix_search_finds_labels(self, engine, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        prefix = drug.split()[0][:3].lower()
        result = engine.search(prefix)
        labels = {m["label"] for m in result["matches"]}
        assert drug in labels
        for match in result["matches"]:
            assert match["kind"] in ("drug", "adr")
            assert match["n_clusters"] == len(match["cluster_ids"])

    def test_kind_filter(self, engine, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        result = engine.search(drug[:3].lower(), kind="drug")
        assert all(m["kind"] == "drug" for m in result["matches"])

    def test_empty_query_rejected(self, engine):
        with pytest.raises(BadQueryError, match="non-empty"):
            engine.search("   ")
        with pytest.raises(BadQueryError, match="kind"):
            engine.search("asp", kind="potion")


class TestUnknownRun:
    def test_unknown_run_is_not_found(self, engine):
        with pytest.raises(NotFoundError, match="unknown run"):
            engine.associations(run="nope")


class TestResponseCache:
    def test_identical_query_hits_cache(self, engine):
        first = engine.associations(limit=3, sort="lift")
        assert engine.cache_stats()["misses"] == 1
        second = engine.associations(limit=3, sort="lift")
        stats = engine.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert first is second  # the cached object itself

    def test_different_params_miss(self, engine):
        engine.associations(limit=3)
        engine.associations(limit=4)
        stats = engine.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_obs_counters_track_cache(self, engine):
        engine.clusters(limit=2)
        engine.clusters(limit=2)
        snapshot = engine.registry.snapshot()
        assert snapshot.counters["serve.cache.misses"] == 1
        assert snapshot.counters["serve.cache.hits"] == 1
        assert snapshot.counters["serve.requests.clusters"] == 2

    def test_per_endpoint_timers_recorded(self, engine):
        engine.associations(limit=1)
        engine.search("a")
        names = {t.name for t in engine.registry.snapshot().timers}
        assert "serve.query.associations" in names
        assert "serve.query.search" in names
