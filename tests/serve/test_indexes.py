"""Inverted and prefix indexes over run records."""

from __future__ import annotations

from itertools import combinations

from repro.serve import PrefixTokenIndex, RunIndexes
from repro.serve.indexes import intersect_sorted, rank_positions, sort_value


def _records():
    return [
        {
            "id": "mcac-000000000001",
            "drugs": ["ASPIRIN", "WARFARIN"],
            "adrs": ["HAEMORRHAGE"],
            "support": 9,
            "confidence": 0.9,
            "lift": 5.0,
            "scores": {"exclusiveness_confidence": 0.8},
        },
        {
            "id": "mcac-000000000002",
            "drugs": ["ASPIRIN", "IBUPROFEN"],
            "adrs": ["GASTRIC ULCER", "HAEMORRHAGE"],
            "support": 4,
            "confidence": 0.5,
            "lift": 9.0,
            "scores": {"exclusiveness_confidence": 0.3},
        },
        {
            "id": "mcac-000000000003",
            "drugs": ["NEXIUM", "PREVACID", "ASPIRIN"],
            "adrs": ["BONE FRACTURE"],
            "support": 7,
            "confidence": 0.7,
            "lift": 2.0,
            "scores": {"exclusiveness_confidence": 0.5},
        },
    ]


class TestRunIndexes:
    def test_by_id_maps_every_record(self):
        records = _records()
        indexes = RunIndexes(records)
        for position, record in enumerate(records):
            assert indexes.by_id[record["id"]] == position

    def test_by_drug_and_adr_match_brute_force(self):
        records = _records()
        indexes = RunIndexes(records)
        for drug in {d for r in records for d in r["drugs"]}:
            expected = tuple(
                p for p, r in enumerate(records) if drug in r["drugs"]
            )
            assert indexes.by_drug[drug] == expected
        for adr in {a for r in records for a in r["adrs"]}:
            expected = tuple(p for p, r in enumerate(records) if adr in r["adrs"])
            assert indexes.by_adr[adr] == expected

    def test_by_pair_covers_all_antecedent_pairs(self):
        records = _records()
        indexes = RunIndexes(records)
        assert indexes.by_pair[("ASPIRIN", "WARFARIN")] == (0,)
        assert indexes.by_pair[("ASPIRIN", "NEXIUM")] == (2,)
        # every pair of every record's drugs is reachable
        for position, record in enumerate(records):
            for pair in combinations(sorted(record["drugs"]), 2):
                assert position in indexes.by_pair[pair]

    def test_order_by_is_best_first(self):
        records = _records()
        indexes = RunIndexes(records)
        assert indexes.order_by["support"] == (0, 2, 1)
        assert indexes.order_by["lift"] == (1, 0, 2)
        assert indexes.order_by["exclusiveness_confidence"] == (0, 2, 1)
        assert set(indexes.sort_keys) == {
            "support",
            "confidence",
            "lift",
            "exclusiveness_confidence",
        }

    def test_order_by_matches_rank_positions(self):
        records = _records()
        indexes = RunIndexes(records)
        for key in indexes.sort_keys:
            assert indexes.order_by[key] == tuple(
                rank_positions(records, range(len(records)), key)
            )

    def test_sort_value_falls_back_to_zero_for_unknown_score(self):
        assert sort_value(_records()[0], "not_a_score") == 0.0


class TestIntersect:
    def test_intersect_sorted(self):
        assert intersect_sorted([(0, 1, 2), (1, 2, 3)]) == [1, 2]
        assert intersect_sorted([(0, 1), (2, 3)]) == []
        assert intersect_sorted([]) == []
        assert intersect_sorted([(4, 5)]) == [4, 5]


class TestPrefixTokenIndex:
    def test_prefix_lookup_matches_any_token(self):
        index = PrefixTokenIndex(
            {
                "drug": ["ASPIRIN", "TRAGAL CITRATE"],
                "adr": ["GASTRIC ULCER", "ASTHMA"],
            }
        )
        assert index.lookup("asp") == [("drug", "ASPIRIN")]
        # second token of a multi-token label is reachable
        assert index.lookup("citr") == [("drug", "TRAGAL CITRATE")]
        assert index.lookup("ulc") == [("adr", "GASTRIC ULCER")]

    def test_kind_filter_and_cross_kind_matches(self):
        index = PrefixTokenIndex({"drug": ["ASPIRIN"], "adr": ["ASTHMA"]})
        both = index.lookup("as")
        assert ("drug", "ASPIRIN") in both and ("adr", "ASTHMA") in both
        assert index.lookup("as", kind="adr") == [("adr", "ASTHMA")]

    def test_empty_prefix_matches_nothing(self):
        index = PrefixTokenIndex({"drug": ["ASPIRIN"]})
        assert index.lookup("") == []
        assert index.lookup("   ") == []

    def test_case_insensitive(self):
        index = PrefixTokenIndex({"drug": ["AsPiRiN"]})
        assert index.lookup("ASPIR") == [("drug", "AsPiRiN")]
