"""The precomputed-bytes layer: correctness, the zero-encode property,
and refresh invalidation.

The headline acceptance for the async serving work is *zero per-request
JSON encoding on the hot paths* — provable from the outside via the
``serve.responses.precomputed`` / ``serve.responses.encoded`` counters,
which is exactly how this suite asserts it.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Maras, MarasConfig
from repro.obs import MetricsRegistry
from repro.serve import ApiResponder, QueryEngine, ResultStore
from repro.serve.bytecache import (
    ByteCacheDirectory,
    SnapshotBytes,
    encode_payload,
    strong_etag,
)

from tests.serve.conftest import RUN_NAME


class TestEncoding:
    def test_encode_payload_is_canonical(self):
        assert encode_payload({"b": 1, "a": [2]}) == b'{"a": [2], "b": 1}'

    def test_strong_etag_is_quoted_and_content_addressed(self):
        one, same, other = (
            strong_etag(b"body"),
            strong_etag(b"body"),
            strong_etag(b"different"),
        )
        assert one == same != other
        assert one.startswith('"') and one.endswith('"') and len(one) == 34


class TestSnapshotBytes:
    def test_cluster_bytes_match_engine_payload(self, snapshot, engine):
        table = SnapshotBytes(snapshot)
        record = snapshot.records[0]
        body, etag = table.cluster(record["id"])
        assert json.loads(body) == engine.cluster(record["id"])
        assert etag == strong_etag(body)

    def test_association_alias_shares_the_cluster_entry(self, snapshot):
        table = SnapshotBytes(snapshot)
        record = snapshot.records[0]
        alias = "assoc-" + record["id"].split("-", 1)[1]
        assert table.cluster(alias) == table.cluster(record["id"])

    def test_drug_bytes_match_engine_payload(self, snapshot, engine):
        table = SnapshotBytes(snapshot)
        drug = snapshot.records[0]["drugs"][0]
        body, _ = table.drug(drug)
        assert json.loads(body) == engine.drug(drug)

    def test_default_pages_cover_every_sort_key(self, snapshot, engine):
        table = SnapshotBytes(snapshot)
        for sort in snapshot.indexes.sort_keys:
            page = engine.associations(sort=sort)
            key = tuple(
                sorted(
                    {
                        "sort": sort,
                        "order": "desc",
                        "limit": page["limit"],
                        "offset": 0,
                    }.items()
                )
            )
            body, _ = table.page("associations", key)
            assert json.loads(body) == page

    def test_misses_return_none(self, snapshot):
        table = SnapshotBytes(snapshot)
        assert table.cluster("mcac-nope") is None
        assert table.drug("NOPE") is None
        assert table.page("associations", (("sort", "nope"),)) is None


class TestDirectory:
    def test_tables_are_built_once_and_shared(self, snapshot):
        directory = ByteCacheDirectory()
        first = directory.for_snapshot(snapshot)
        assert directory.for_snapshot(snapshot) is first
        assert directory.builds == 1

    def test_invalidate_drops_exactly_that_token(self, snapshot):
        directory = ByteCacheDirectory()
        directory.for_snapshot(snapshot)
        assert directory.invalidate(snapshot.token) is True
        assert directory.invalidate(snapshot.token) is False
        assert directory.stats()["tables"] == 0

    def test_stats_account_entries_and_bytes(self, snapshot):
        directory = ByteCacheDirectory()
        table = directory.for_snapshot(snapshot)
        stats = directory.stats()
        assert stats == {
            "tables": 1,
            "entries": table.n_entries,
            "bytes": table.n_bytes,
            "builds": 1,
        }


@pytest.fixture
def hammer_responder(mined_quarter):
    store = ResultStore()
    store.add_result(RUN_NAME, mined_quarter)
    return ApiResponder(QueryEngine(store, registry=MetricsRegistry()))


class TestZeroEncodeProperty:
    def test_hot_paths_never_encode_after_warm(self, hammer_responder, snapshot):
        responder = hammer_responder
        assert responder.warm() > 0
        registry = responder.engine.registry
        encoded_before = registry.snapshot().counters.get(
            "serve.responses.encoded", 0
        )

        cluster_id = snapshot.records[0]["id"]
        drug = snapshot.records[0]["drugs"][0]
        for _ in range(25):
            assert responder.handle("GET", f"/v1/clusters/{cluster_id}").status == 200
            assert responder.handle("GET", f"/v1/drugs/{drug}").status == 200
            assert responder.handle("GET", "/v1/associations").status == 200
            assert responder.handle("GET", "/v1/clusters?sort=lift").status == 200

        counters = responder.engine.registry.snapshot().counters
        assert counters.get("serve.responses.encoded", 0) == encoded_before
        assert counters["serve.responses.precomputed"] == 100

    def test_long_tail_queries_still_encode_through_the_lru(
        self, hammer_responder
    ):
        responder = hammer_responder
        responder.warm()
        response = responder.handle("GET", "/v1/associations?limit=3&offset=7")
        assert response.status == 200
        counters = responder.engine.registry.snapshot().counters
        assert counters["serve.responses.encoded"] == 1

    def test_refresh_invalidates_byte_tables(self, mined_quarter):
        store = ResultStore()
        store.add_result(RUN_NAME, mined_quarter)
        responder = ApiResponder(QueryEngine(store, registry=MetricsRegistry()))
        responder.warm()
        before = responder.handle("GET", "/v1/associations")
        assert before.status == 200

        smaller = Maras(MarasConfig(min_support=6, clean=False)).run(
            mined_quarter.dataset
        )
        responder.engine.refresh(RUN_NAME, smaller)
        counters = responder.engine.registry.snapshot().counters
        assert counters["serve.bytecache.invalidated"] == 1

        after = responder.handle("GET", "/v1/associations")
        assert after.status == 200
        assert json.loads(after.body)["total"] == len(smaller.clusters)
        assert json.loads(before.body)["total"] == len(mined_quarter.clusters)
