"""Contract tests for the asyncio transport.

Same ``/v1`` surface as the threaded fallback (byte-parity is asserted
separately in ``test_parity.py``); what is *specific* to this transport
— keep-alive, HEAD, conditional GETs, duplicate-parameter rejection,
malformed-request handling, load shedding, graceful drain — is driven
here over real sockets.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from urllib.parse import quote

from tests.serve.conftest import RUN_NAME, http_get, http_request

from repro.serve import ApiResponder, running_async_server


class TestAsyncContract:
    def test_healthz(self, async_server):
        status, body = http_get(async_server.url, "/v1/healthz")
        assert status == 200
        assert body == {"status": "ok", "runs": [RUN_NAME]}

    def test_pagination_envelope(self, async_server, snapshot):
        status, body = http_get(
            async_server.url, "/v1/associations?limit=5&offset=2&sort=lift"
        )
        assert status == 200
        assert body["total"] == snapshot.n_clusters
        assert body["offset"] == 2 and body["limit"] == 5
        lifts = [item["lift"] for item in body["items"]]
        assert lifts == sorted(lifts, reverse=True)

    def test_error_envelope(self, async_server):
        status, body = http_get(async_server.url, "/v1/nope")
        assert status == 404
        assert body["error"]["status"] == 404

        status, body = http_get(async_server.url, "/v1/associations?sort=nope")
        assert status == 400
        assert "sort" in body["error"]["message"]

    def test_duplicate_query_parameter_is_400(self, async_server):
        status, body = http_get(
            async_server.url, "/v1/associations?limit=5&limit=10"
        )
        assert status == 400
        assert "duplicate query parameter" in body["error"]["message"]
        assert "'limit'" in body["error"]["message"]

    def test_post_is_405_with_allow(self, async_server):
        status, headers, body = http_request(
            async_server.url, "/v1/associations", method="POST"
        )
        assert status == 405
        assert headers["allow"] == "GET, HEAD"
        assert json.loads(body)["error"]["status"] == 405

    def test_keep_alive_serves_many_requests_per_connection(self, async_server):
        conn = http.client.HTTPConnection(
            async_server.host, async_server.port, timeout=10
        )
        try:
            for _ in range(5):
                conn.request("GET", "/v1/associations")
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "keep-alive"
                response.read()
        finally:
            conn.close()
        counters = async_server.responder.engine.registry.snapshot().counters
        assert counters["serve.http.connections"] == 1
        assert counters["serve.http.requests"] == 5

    def test_head_is_get_headers_without_body(self, async_server):
        get_status, get_headers, get_body = http_request(
            async_server.url, "/v1/associations"
        )
        head_status, head_headers, head_body = http_request(
            async_server.url, "/v1/associations", method="HEAD"
        )
        assert (get_status, head_status) == (200, 200)
        assert head_body == b""
        assert int(head_headers["content-length"]) == len(get_body)
        assert head_headers["content-type"] == get_headers["content-type"]

    def test_etag_roundtrip_304(self, async_server, snapshot):
        cluster_id = snapshot.records[0]["id"]
        path = f"/v1/clusters/{cluster_id}"
        status, headers, body = http_request(async_server.url, path)
        assert status == 200
        etag = headers["etag"]
        assert etag.startswith('"') and etag.endswith('"')

        status, headers, conditional_body = http_request(
            async_server.url, path, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert conditional_body == b""
        assert headers["etag"] == etag
        assert "content-type" not in headers

        status, _, refetched = http_request(
            async_server.url, path, headers={"If-None-Match": '"stale"'}
        )
        assert status == 200 and refetched == body

    def test_malformed_request_line_is_400_and_closed(self, async_server):
        with socket.create_connection(
            (async_server.host, async_server.port), timeout=10
        ) as raw:
            raw.sendall(b"NOT A REQUEST\r\n\r\n")
            data = raw.recv(65536)
        assert data.startswith(b"HTTP/1.1 400 ")
        assert b"Connection: close" in data

    def test_oversize_header_section_is_431(self, async_server):
        with socket.create_connection(
            (async_server.host, async_server.port), timeout=10
        ) as raw:
            raw.sendall(b"GET /v1/healthz HTTP/1.1\r\n")
            raw.sendall(b"X-Pad: " + b"a" * 40000 + b"\r\n\r\n")
            data = raw.recv(65536)
        assert data.startswith(b"HTTP/1.1 431 ")


class TestLoadShedding:
    def test_connections_beyond_cap_get_503_retry_after(self, responder):
        with running_async_server(responder, max_connections=1) as server:
            holder = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                holder.request("GET", "/v1/healthz")
                holder.getresponse().read()  # keep-alive: still connected
                status, headers, body = http_request(server.url, "/v1/healthz")
                assert status == 503
                assert headers["retry-after"] == "1"
                assert json.loads(body)["error"]["status"] == 503
            finally:
                holder.close()
            counters = responder.engine.registry.snapshot().counters
            assert counters["serve.http.shed"] == 1
            assert counters["serve.http.status.503"] == 1

    def test_shed_connection_does_not_break_serving(self, responder):
        with running_async_server(responder, max_connections=1) as server:
            holder = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                holder.request("GET", "/v1/healthz")
                holder.getresponse().read()
                assert http_request(server.url, "/v1/healthz")[0] == 503
            finally:
                holder.close()
            # capacity released: the next client is served again
            deadline = time.monotonic() + 5
            while True:
                status, _, _ = http_request(server.url, "/v1/healthz")
                if status == 200:
                    break
                assert time.monotonic() < deadline, "slot never released"
                time.sleep(0.02)


class TestGracefulShutdown:
    def test_in_flight_request_completes_before_stop(self, engine):
        responder = ApiResponder(engine)
        inner = responder.handle

        def slow_handle(method, target, headers=None):
            time.sleep(0.2)
            return inner(method, target, headers)

        responder.handle = slow_handle
        results: list[tuple[int, bytes]] = []

        with running_async_server(responder) as server:
            def client() -> None:
                status, _, body = http_request(server.url, "/v1/associations")
                results.append((status, body))

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.05)  # let the request reach the loop
            # leaving the context triggers shutdown while the request is
            # mid-handling; drain must let it finish
        thread.join(timeout=15)
        assert not thread.is_alive()
        (status, body), = results
        assert status == 200
        assert json.loads(body)["total"] >= 0

    def test_idle_keep_alive_connections_are_closed_on_stop(self, responder):
        with running_async_server(responder) as server:
            idle = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            idle.request("GET", "/v1/healthz")
            idle.getresponse().read()
            url = server.url
        # server is down: the parked connection was cancelled, and new
        # connections are refused
        try:
            status, _, _ = http_request(url, "/v1/healthz")
        except OSError:
            status = None
        assert status is None
        idle.close()

    def test_metrics_expose_transport_counters(self, async_server, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        http_get(async_server.url, f"/v1/drugs/{quote(drug)}")
        http_get(async_server.url, "/v1/associations")
        status, body = http_get(async_server.url, "/v1/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters["serve.responses.precomputed"] >= 2
        assert counters["serve.http.status.200"] >= 2
        assert body["bytecache"]["tables"] == 1
        assert body["bytecache"]["entries"] > 0
