"""In-place run refresh: atomic snapshot swap + cache invalidation.

The surveillance loop re-mines a quarter per batch and swaps the served
run in place. Readers must never see a partially-built snapshot, a
stale cached page after the swap, or a cross-snapshot mixture — the
hammer test drives concurrent readers straight through repeated swaps.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import Maras, MarasConfig
from repro.errors import NotFoundError
from repro.obs import MetricsRegistry
from repro.serve import (
    ApiResponder,
    QueryEngine,
    ResultStore,
    running_async_server,
)

from tests.serve.conftest import http_request

RUN = "hammered"


@pytest.fixture(scope="module")
def half_quarter(small_quarter_reports):
    """A second, distinct result to swap against the full quarter."""
    return Maras(MarasConfig(min_support=4, clean=False)).run(
        small_quarter_reports[: len(small_quarter_reports) // 2]
    )


@pytest.fixture
def fresh_engine(mined_quarter):
    store = ResultStore()
    store.add_result(RUN, mined_quarter)
    return QueryEngine(store, registry=MetricsRegistry())


class TestRefresh:
    def test_refresh_swaps_snapshot_atomically(
        self, fresh_engine, half_quarter, mined_quarter
    ):
        before = fresh_engine.store.get(RUN)
        swapped = fresh_engine.refresh(RUN, half_quarter)
        assert fresh_engine.store.get(RUN) is swapped
        assert swapped.token != before.token
        assert swapped.n_clusters == len(half_quarter.clusters)

    def test_refresh_unknown_run_is_not_found(self, fresh_engine, half_quarter):
        with pytest.raises(NotFoundError, match="cannot refresh"):
            fresh_engine.store.refresh("nope", half_quarter)

    def test_refresh_invalidates_only_that_runs_cache(
        self, mined_quarter, half_quarter
    ):
        store = ResultStore()
        store.add_result(RUN, mined_quarter)
        store.add_result("other", mined_quarter)
        engine = QueryEngine(store, registry=MetricsRegistry())
        engine.clusters(run=RUN)
        engine.clusters(run="other")
        assert len(engine.cache) == 2

        engine.refresh(RUN, half_quarter)
        assert len(engine.cache) == 1  # "other" stays cached

        page = engine.clusters(run=RUN)
        assert page["total"] == len(half_quarter.clusters)
        counters = engine.registry.snapshot().counters
        assert counters["serve.cache.invalidated"] == 1

    def test_stale_pages_never_served_after_refresh(
        self, fresh_engine, half_quarter, mined_quarter
    ):
        first = fresh_engine.clusters(run=RUN)
        assert first["total"] == len(mined_quarter.clusters)
        fresh_engine.refresh(RUN, half_quarter)
        second = fresh_engine.clusters(run=RUN)
        assert second["total"] == len(half_quarter.clusters)

    def test_subscriber_not_fired_on_first_registration(self, mined_quarter):
        store = ResultStore()
        calls = []
        store.subscribe(lambda old, new: calls.append((old.name, new.name)))
        store.add_result(RUN, mined_quarter)
        assert calls == []
        store.add_result(RUN, mined_quarter)
        assert calls == [(RUN, RUN)]


class TestRefreshHammer:
    def test_readers_survive_concurrent_swaps(
        self, fresh_engine, half_quarter, mined_quarter
    ):
        """Readers hammer the engine while the run is swapped repeatedly;
        every response must be one snapshot's truth, never a mixture."""
        totals = {len(mined_quarter.clusters), len(half_quarter.clusters)}
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    page = fresh_engine.clusters(run=RUN, limit=5)
                    assert page["total"] in totals
                    assert len(page["items"]) == page["count"] <= 5
                    listing = fresh_engine.runs()["runs"]
                    assert [run["name"] for run in listing] == [RUN]
            except BaseException as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for cycle in range(20):
                result = half_quarter if cycle % 2 == 0 else mined_quarter
                fresh_engine.refresh(RUN, result)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors[:1]
        final = fresh_engine.clusters(run=RUN, limit=5)
        assert final["total"] == len(mined_quarter.clusters)


class TestRefreshUnderLoadAsync:
    def test_hot_path_bytes_never_torn_across_swaps(
        self, fresh_engine, half_quarter, mined_quarter
    ):
        """HTTP clients hammer the byte-cached hot paths over the async
        transport while the served run is swapped repeatedly. Every body
        must be one snapshot's complete truth: a listing's ``total``
        matches one of the two results exactly, and a cluster detail's
        bytes verify against their own strong ETag — a torn or mixed
        response cannot satisfy either."""
        responder = ApiResponder(fresh_engine)
        responder.warm()
        totals = {len(mined_quarter.clusters), len(half_quarter.clusters)}
        # ids present in both results stay resolvable across every swap
        from repro.serve import RunSnapshot

        half_ids = {
            record["id"]
            for record in RunSnapshot.from_result("half", half_quarter).records
        }
        common_ids = sorted(
            {r["id"] for r in fresh_engine.store.get(RUN).records} & half_ids
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        with running_async_server(responder) as server:
            def reader() -> None:
                try:
                    while not stop.is_set():
                        status, _, body = http_request(
                            server.url, "/v1/associations"
                        )
                        assert status == 200
                        assert json.loads(body)["total"] in totals
                        if common_ids:
                            status, headers, body = http_request(
                                server.url, f"/v1/clusters/{common_ids[0]}"
                            )
                            assert status == 200
                            from repro.serve.bytecache import strong_etag

                            assert headers["etag"] == strong_etag(body)
                except BaseException as error:  # noqa: BLE001 — surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                for cycle in range(10):
                    result = half_quarter if cycle % 2 == 0 else mined_quarter
                    fresh_engine.refresh(RUN, result)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
        assert not errors, errors[:1]
        counters = fresh_engine.registry.snapshot().counters
        # each swap invalidates the replaced table when a reader had
        # built one (readers hammer continuously, so nearly every cycle)
        assert 1 <= counters["serve.bytecache.invalidated"] <= 10
        assert counters.get("serve.responses.precomputed", 0) > 0
