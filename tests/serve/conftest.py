"""Fixtures for the serving-layer suite.

One mined synthetic quarter (the session-scoped ``mined_quarter``) is
snapshotted into a module-scoped store; engines are function-scoped so
each test reads its own cache and metrics counters from zero.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from urllib.parse import urlsplit

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    ApiResponder,
    QueryEngine,
    ResultStore,
    RunSnapshot,
    running_async_server,
    running_server,
)

RUN_NAME = "2014T1"


@pytest.fixture(scope="module")
def snapshot(mined_quarter) -> RunSnapshot:
    return RunSnapshot.from_result(RUN_NAME, mined_quarter)


@pytest.fixture(scope="module")
def store(snapshot) -> ResultStore:
    store = ResultStore()
    store.add_snapshot(snapshot)
    return store


@pytest.fixture
def engine(store) -> QueryEngine:
    return QueryEngine(store, registry=MetricsRegistry())


@pytest.fixture
def server(engine):
    with running_server(engine) as server:
        yield server


@pytest.fixture
def responder(engine) -> ApiResponder:
    return ApiResponder(engine)


@pytest.fixture
def async_server(responder):
    with running_async_server(responder) as server:
        yield server


def http_get(base_url: str, path: str) -> tuple[int, dict]:
    """GET returning ``(status, parsed_json)`` for 2xx and error statuses."""
    try:
        with urllib.request.urlopen(base_url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_request(
    base_url: str,
    path: str,
    *,
    method: str = "GET",
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """One request returning ``(status, lowercased-headers, raw body)``.

    Unlike :func:`http_get` this never parses the body, so it can
    observe 304/HEAD emptiness and compare transports byte-for-byte.
    """
    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
    try:
        conn.request(method, path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        header_map = {k.lower(): v for k, v in response.getheaders()}
        return response.status, header_map, body
    finally:
        conn.close()
