"""Fixtures for the serving-layer suite.

One mined synthetic quarter (the session-scoped ``mined_quarter``) is
snapshotted into a module-scoped store; engines are function-scoped so
each test reads its own cache and metrics counters from zero.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.serve import QueryEngine, ResultStore, RunSnapshot, running_server

RUN_NAME = "2014T1"


@pytest.fixture(scope="module")
def snapshot(mined_quarter) -> RunSnapshot:
    return RunSnapshot.from_result(RUN_NAME, mined_quarter)


@pytest.fixture(scope="module")
def store(snapshot) -> ResultStore:
    store = ResultStore()
    store.add_snapshot(snapshot)
    return store


@pytest.fixture
def engine(store) -> QueryEngine:
    return QueryEngine(store, registry=MetricsRegistry())


@pytest.fixture
def server(engine):
    with running_server(engine) as server:
        yield server


def http_get(base_url: str, path: str) -> tuple[int, dict]:
    """GET returning ``(status, parsed_json)`` for 2xx and error statuses."""
    try:
        with urllib.request.urlopen(base_url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
