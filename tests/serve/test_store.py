"""Run snapshots, the result store, and the warm-restart round-trip."""

from __future__ import annotations

import pytest

from repro.core.export import export_result
from repro.core.ids import cluster_id
from repro.errors import ConfigError, NotFoundError, ValidationError
from repro.serve import QueryEngine, ResultStore, RunSnapshot

from tests.serve.conftest import RUN_NAME


class TestRunSnapshot:
    def test_from_result_builds_records_and_indexes(self, snapshot, mined_quarter):
        assert snapshot.name == RUN_NAME
        assert snapshot.n_clusters == len(mined_quarter.clusters)
        assert len(snapshot.indexes.by_id) == snapshot.n_clusters
        assert snapshot.payload["format_version"] == 1

    def test_record_ids_match_live_cluster_stable_ids(self, snapshot, mined_quarter):
        catalog = mined_quarter.catalog
        live_ids = {c.stable_id(catalog) for c in mined_quarter.clusters}
        assert {r["id"] for r in snapshot.records} == live_ids

    def test_rejects_unknown_format_version(self):
        with pytest.raises(ValidationError, match="format version"):
            RunSnapshot("run1", {"format_version": 99, "clusters": []})

    def test_run_name_validated(self):
        for bad in ("", "../etc", "a b", "run/1"):
            with pytest.raises(ConfigError, match="run names"):
                RunSnapshot(bad, {"format_version": 1, "clusters": []})

    def test_pre_stable_id_exports_get_ids_computed(self, mined_quarter):
        payload = export_result(mined_quarter)
        for record in payload["clusters"]:
            del record["id"]
        snapshot = RunSnapshot("legacy", payload)
        for record in snapshot.records:
            assert record["id"] == cluster_id(record["drugs"], record["adrs"])

    def test_tokens_are_unique_per_snapshot(self, mined_quarter):
        first = RunSnapshot.from_result("r1", mined_quarter)
        second = RunSnapshot.from_result("r1", mined_quarter)
        assert first.token != second.token


class TestResultStore:
    def test_get_unknown_run_is_not_found(self, store):
        with pytest.raises(NotFoundError, match="unknown run"):
            store.get("nope")

    def test_default_run_with_one_run(self, store):
        assert store.default_run() == RUN_NAME

    def test_default_run_errors(self, mined_quarter):
        empty = ResultStore()
        with pytest.raises(NotFoundError, match="no runs"):
            empty.default_run()
        multi = ResultStore()
        multi.add_result("q1", mined_quarter)
        multi.add_result("q2", mined_quarter)
        with pytest.raises(NotFoundError, match="multiple runs"):
            multi.default_run()

    def test_names_and_contains(self, store):
        assert store.names() == [RUN_NAME]
        assert RUN_NAME in store
        assert "nope" not in store
        assert len(store) == 1


class TestWarmRestartRoundTrip:
    def test_save_load_serves_identical_responses(self, store, tmp_path):
        """The acceptance criterion: store→save→load changes no answer."""
        paths = store.save(tmp_path / "runs")
        assert [p.name for p in paths] == [f"{RUN_NAME}.json"]

        reloaded = ResultStore.load(tmp_path / "runs")
        assert reloaded.names() == store.names()

        live = QueryEngine(store)
        warm = QueryEngine(reloaded)
        queries = [
            lambda e: e.associations(sort="lift", limit=25),
            lambda e: e.associations(sort="exclusiveness_confidence", limit=500),
            lambda e: e.clusters(limit=10, offset=5),
            lambda e: e.search("a", limit=50),
        ]
        for query in queries:
            assert query(live) == query(warm)
        some_id = store.get(RUN_NAME).records[0]["id"]
        assert live.cluster(some_id) == warm.cluster(some_id)
        drug = store.get(RUN_NAME).records[0]["drugs"][0]
        assert live.drug(drug) == warm.drug(drug)

    def test_load_empty_directory_is_not_found(self, tmp_path):
        with pytest.raises(NotFoundError, match="no run snapshots"):
            ResultStore.load(tmp_path)

    def test_reregistering_a_run_replaces_it(self, mined_quarter):
        store = ResultStore()
        first = store.add_result("q", mined_quarter)
        second = store.add_result("q", mined_quarter)
        assert store.get("q") is second
        assert first.token != second.token
