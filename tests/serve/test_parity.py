"""Transport parity: sync and async answers are byte-identical.

Both transports delegate to one shared :class:`ApiResponder`, so parity
holds by construction — this suite asserts it end-to-end anyway, over
real sockets, for success bodies, error envelopes, ETags, and status
codes. ``/v1/metrics`` is excluded (its counters legitimately differ
between two live servers).
"""

from __future__ import annotations

from urllib.parse import quote

import pytest

from tests.serve.conftest import http_request

from repro.obs import MetricsRegistry
from repro.serve import (
    ApiResponder,
    QueryEngine,
    running_async_server,
    running_server,
)


@pytest.fixture
def transport_pair(store):
    """One server per transport, each over its own responder/registry."""
    sync_responder = ApiResponder(QueryEngine(store, registry=MetricsRegistry()))
    async_responder = ApiResponder(QueryEngine(store, registry=MetricsRegistry()))
    with running_server(sync_responder) as sync_server:
        with running_async_server(async_responder) as async_server:
            yield sync_server.url, async_server.url


PATHS = [
    "/v1/healthz",
    "/v1/runs",
    "/v1/associations",
    "/v1/associations?limit=3&offset=1&sort=lift&order=asc",
    "/v1/clusters",
    "/v1/clusters?min_support=5&limit=2",
    "/v1/search?q=a",
    # error surface
    "/v1/nope",
    "/v1/associations?sort=bogus",
    "/v1/associations?limit=5&limit=6",
    "/v1/clusters/mcac-ffffffffffff",
    "/v1/search",
]


class TestTransportParity:
    @pytest.mark.parametrize("path", PATHS)
    def test_fixed_paths_byte_identical(self, transport_pair, path):
        sync_url, async_url = transport_pair
        sync_status, sync_headers, sync_body = http_request(sync_url, path)
        async_status, async_headers, async_body = http_request(async_url, path)
        assert sync_status == async_status
        assert sync_body == async_body
        assert sync_headers.get("content-type") == async_headers.get(
            "content-type"
        )
        assert sync_headers.get("etag") == async_headers.get("etag")

    def test_id_addressed_resources_byte_identical(
        self, transport_pair, snapshot
    ):
        sync_url, async_url = transport_pair
        cluster_id = snapshot.records[0]["id"]
        drug = snapshot.records[0]["drugs"][0]
        for path in (
            f"/v1/clusters/{cluster_id}",
            f"/v1/drugs/{quote(drug)}",
        ):
            sync_status, sync_headers, sync_body = http_request(sync_url, path)
            async_status, async_headers, async_body = http_request(
                async_url, path
            )
            assert (sync_status, async_status) == (200, 200)
            assert sync_body == async_body
            assert sync_headers["etag"] == async_headers["etag"]

    def test_conditional_get_parity(self, transport_pair, snapshot):
        sync_url, async_url = transport_pair
        path = f"/v1/clusters/{snapshot.records[0]['id']}"
        _, headers, _ = http_request(sync_url, path)
        etag = headers["etag"]
        for url in (sync_url, async_url):
            status, conditional_headers, body = http_request(
                url, path, headers={"If-None-Match": etag}
            )
            assert status == 304
            assert body == b""
            assert conditional_headers["etag"] == etag

    def test_head_parity(self, transport_pair):
        sync_url, async_url = transport_pair
        path = "/v1/associations?limit=4"
        results = [
            http_request(url, path, method="HEAD")
            for url in (sync_url, async_url)
        ]
        (sync_status, sync_headers, sync_body) = results[0]
        (async_status, async_headers, async_body) = results[1]
        assert (sync_status, async_status) == (200, 200)
        assert sync_body == async_body == b""
        assert (
            sync_headers["content-length"] == async_headers["content-length"]
        )
        assert int(sync_headers["content-length"]) > 0
