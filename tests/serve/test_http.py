"""HTTP contract tests for the full ``/v1`` surface, plus a hammer test.

Each test boots a real :class:`ThreadingHTTPServer` on an ephemeral
port and speaks actual HTTP — status codes, JSON bodies, error
envelopes — exactly what an external client observes.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import quote

from tests.serve.conftest import RUN_NAME, http_get, http_request


class TestHealthAndRuns:
    def test_healthz(self, server):
        status, body = http_get(server.url, "/v1/healthz")
        assert status == 200
        assert body == {"status": "ok", "runs": [RUN_NAME]}

    def test_runs_listing(self, server, snapshot):
        status, body = http_get(server.url, "/v1/runs")
        assert status == 200
        (run,) = body["runs"]
        assert run["name"] == RUN_NAME
        assert run["n_clusters"] == snapshot.n_clusters
        assert "exclusiveness_confidence" in run["sort_keys"]
        assert run["dataset"]["n_reports"] > 0


class TestQueryEndpoints:
    def test_associations_pagination_envelope(self, server, snapshot):
        status, body = http_get(
            server.url, "/v1/associations?limit=5&offset=2&sort=lift"
        )
        assert status == 200
        assert body["total"] == snapshot.n_clusters
        assert body["offset"] == 2 and body["limit"] == 5
        assert body["count"] == len(body["items"])
        lifts = [item["lift"] for item in body["items"]]
        assert lifts == sorted(lifts, reverse=True)

    def test_explicit_run_parameter(self, server):
        status, body = http_get(
            server.url, f"/v1/associations?run={RUN_NAME}&limit=1"
        )
        assert status == 200 and body["run"] == RUN_NAME

    def test_clusters_listing_and_detail(self, server):
        status, listing = http_get(server.url, "/v1/clusters?limit=1")
        assert status == 200
        cluster_id = listing["items"][0]["id"]
        status, detail = http_get(server.url, f"/v1/clusters/{cluster_id}")
        assert status == 200
        assert detail["id"] == cluster_id
        assert detail["context"]
        status, via_param = http_get(server.url, f"/v1/clusters?id={cluster_id}")
        assert status == 200 and via_param == detail

    def test_drug_profile(self, server, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        status, body = http_get(server.url, f"/v1/drugs/{quote(drug)}")
        assert status == 200
        assert body["drug"] == drug
        assert body["n_clusters"] >= 1

    def test_search(self, server, snapshot):
        drug = snapshot.records[0]["drugs"][0]
        prefix = quote(drug.split()[0][:3].lower())
        status, body = http_get(server.url, f"/v1/search?q={prefix}")
        assert status == 200
        assert body["total"] >= 1
        assert any(m["label"] == drug for m in body["matches"])


class TestErrorContract:
    def test_unknown_endpoint_404(self, server):
        status, body = http_get(server.url, "/v1/nope")
        assert status == 404
        assert body["error"]["status"] == 404

    def test_unknown_run_404(self, server):
        status, body = http_get(server.url, "/v1/associations?run=missing")
        assert status == 404
        assert "unknown run" in body["error"]["message"]

    def test_unknown_drug_404(self, server):
        status, body = http_get(server.url, "/v1/drugs/NOT%20A%20DRUG")
        assert status == 404

    def test_unknown_cluster_404(self, server):
        status, body = http_get(server.url, "/v1/clusters/mcac-ffffffffffff")
        assert status == 404

    def test_bad_sort_400(self, server):
        status, body = http_get(server.url, "/v1/associations?sort=astrology")
        assert status == 400
        assert "unknown sort key" in body["error"]["message"]

    def test_bad_limit_400(self, server):
        for query in ("limit=0", "limit=99999", "limit=many", "offset=-3"):
            status, body = http_get(server.url, f"/v1/associations?{query}")
            assert status == 400, query

    def test_search_without_q_400(self, server):
        status, body = http_get(server.url, "/v1/search")
        assert status == 400
        assert "q parameter" in body["error"]["message"]

    def test_unknown_parameter_400(self, server):
        status, _ = http_get(server.url, "/v1/clusters?frobnicate=1")
        assert status == 400


class TestMetricsEndpoint:
    def test_counters_move_with_traffic(self, server):
        _, before = http_get(server.url, "/v1/metrics")
        http_get(server.url, "/v1/associations?limit=1")
        http_get(server.url, "/v1/associations?limit=1")  # cache hit
        http_get(server.url, "/v1/nope")
        _, after = http_get(server.url, "/v1/metrics")

        def counter(body, name):
            return body["metrics"]["counters"].get(name, 0)

        assert (
            counter(after, "serve.http.requests")
            >= counter(before, "serve.http.requests") + 3
        )
        assert counter(after, "serve.http.status.404") == 1
        assert counter(after, "serve.cache.hits") >= 1
        assert counter(after, "serve.cache.misses") >= 1
        assert after["cache"]["hits"] >= 1
        # the engine's query timer nests under the HTTP request span
        assert any(
            name.endswith("serve.query.associations")
            for name in after["metrics"]["timers"]
        )

    def test_per_endpoint_request_counters(self, server):
        http_get(server.url, "/v1/clusters?limit=1")
        _, body = http_get(server.url, "/v1/metrics")
        assert body["metrics"]["counters"]["serve.requests.clusters"] == 1


class TestConcurrentHammer:
    def test_hammered_responses_stay_consistent(self, server, snapshot):
        """Many threads, overlapping cached/uncached queries, one truth.

        Every response for the same query string must be identical
        (the LRU cache may or may not serve it), and every response
        must be internally consistent with the envelope contract.
        """
        drug = snapshot.records[0]["drugs"][0]
        paths = [
            "/v1/associations?limit=5&sort=lift",
            "/v1/associations?limit=5&sort=support",
            f"/v1/associations?drug={quote(drug)}&limit=10",
            "/v1/clusters?limit=3&sort=exclusiveness_confidence",
            f"/v1/drugs/{quote(drug)}",
            "/v1/search?q=a&limit=10",
            "/v1/healthz",
        ]
        reference = {path: http_get(server.url, path) for path in paths}
        assert all(status == 200 for status, _ in reference.values())

        def hammer(index: int):
            path = paths[index % len(paths)]
            return path, http_get(server.url, path)

        # submit + explicit exception collection, not pool.map: map
        # re-raises only the first worker exception and only when its
        # turn comes up in iteration order, which can mask every other
        # failing thread (and an early assertion would leave later
        # futures' exceptions unobserved entirely). Collect them all and
        # fail with the full list so no worker dies silently.
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(hammer, index) for index in range(200)]
        errors = [
            repr(error)
            for error in (future.exception() for future in futures)
            if error is not None
        ]
        assert not errors, f"{len(errors)} hammer thread(s) raised: {errors[:5]}"
        results = [future.result() for future in futures]

        for path, (status, body) in results:
            assert status == 200, path
            assert body == reference[path][1], path

        _, metrics = http_get(server.url, "/v1/metrics")
        cache = metrics["cache"]
        counters = metrics["metrics"]["counters"]
        # The hammer repeats 7 distinct queries 200 times. The drug
        # profile is answered from precomputed bytes (zero JSON encode),
        # the parameterized pages and the search from the LRU: between
        # the two caches nearly every request is absorbed.
        absorbed = cache["hits"] + counters.get("serve.responses.precomputed", 0)
        assert absorbed > 150
        assert cache["hit_rate"] > 0.5
        assert counters["serve.responses.precomputed"] > 10


class TestConditionalAndHead:
    """Satellite contract on the threaded transport: ETags, HEAD, 405."""

    def test_cluster_etag_304_roundtrip(self, server, snapshot):
        path = f"/v1/clusters/{snapshot.records[0]['id']}"
        status, headers, body = http_request(server.url, path)
        assert status == 200
        etag = headers["etag"]

        status, headers, conditional = http_request(
            server.url, path, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert conditional == b""
        assert headers["etag"] == etag

        status, _, refetched = http_request(
            server.url, path, headers={"If-None-Match": '"stale"'}
        )
        assert status == 200 and refetched == body

    def test_if_none_match_star_matches(self, server, snapshot):
        path = f"/v1/clusters/{snapshot.records[0]['id']}"
        status, _, _ = http_request(
            server.url, path, headers={"If-None-Match": "*"}
        )
        assert status == 304

    def test_head_returns_get_headers_without_body(self, server):
        get_status, get_headers, get_body = http_request(
            server.url, "/v1/associations"
        )
        head_status, head_headers, head_body = http_request(
            server.url, "/v1/associations", method="HEAD"
        )
        assert (get_status, head_status) == (200, 200)
        assert head_body == b""
        assert int(head_headers["content-length"]) == len(get_body)
        assert head_headers["content-type"] == get_headers["content-type"]

    def test_duplicate_query_parameter_rejected(self, server):
        status, body = http_get(server.url, "/v1/clusters?limit=1&limit=2")
        assert status == 400
        assert "duplicate query parameter" in body["error"]["message"]

    def test_post_is_json_405_with_allow(self, server):
        status, headers, body = http_request(
            server.url, "/v1/associations", method="POST"
        )
        assert status == 405
        assert headers["allow"] == "GET, HEAD"
        assert json.loads(body)["error"]["status"] == 405


class TestGracefulDrain:
    def test_drain_waits_for_in_flight_request(self, store):
        from repro.obs import MetricsRegistry
        from repro.serve import ApiResponder, QueryEngine, running_server

        responder = ApiResponder(QueryEngine(store, registry=MetricsRegistry()))
        inner = responder.handle
        started = threading.Event()

        def slow_handle(method, target, headers=None):
            started.set()
            time.sleep(0.3)
            return inner(method, target, headers)

        responder.handle = slow_handle
        results = []
        with running_server(responder) as server:
            url = server.url

            def client():
                results.append(http_request(url, "/v1/healthz"))

            thread = threading.Thread(target=client)
            thread.start()
            assert started.wait(timeout=5)
            server.shutdown()  # stop accepting; request is mid-handling
            assert server.drain(deadline=10) is True
        thread.join(timeout=10)
        (status, _, body), = results
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_drain_is_immediate_when_idle(self, server):
        http_get(server.url, "/v1/healthz")
        assert server.drain(deadline=1) is True
