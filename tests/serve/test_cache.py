"""The bounded thread-safe LRU cache."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.serve import LRUCache


class TestLRUSemantics:
    def test_get_put_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a becomes most recent
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 1
        assert "b" not in cache

    def test_put_refreshes_recency_and_value(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_len_and_clear(self):
        cache = LRUCache(maxsize=8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_maxsize_validated(self):
        with pytest.raises(ConfigError, match="maxsize"):
            LRUCache(maxsize=0)


class TestStats:
    def test_hit_miss_eviction_accounting(self):
        cache = LRUCache(maxsize=2)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.put("b", 2)
        cache.put("c", 3)  # eviction
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 2
        assert stats.maxsize == 2
        assert stats.hit_rate == 0.5

    def test_hit_rate_defined_when_empty(self):
        assert LRUCache().stats().hit_rate == 0.0


class TestThreadSafety:
    def test_concurrent_mixed_workload_stays_bounded(self):
        cache = LRUCache(maxsize=32)
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * 31 + i) % 64
                    if i % 3:
                        cache.put(key, (seed, i))
                    else:
                        value = cache.get(key)
                        assert value is None or isinstance(value, tuple)
            except Exception as error:  # pragma: no cover — failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats.hits + stats.misses > 0
