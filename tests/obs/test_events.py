"""Tests for the event-sink half of the observability layer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    read_jsonl,
)


class TestInMemorySink:
    def test_collects_and_filters(self):
        sink = InMemorySink()
        sink.write({"event": "a", "n": 1})
        sink.write({"event": "b"})
        sink.write({"event": "a", "n": 2})
        assert len(sink.events) == 3
        assert [r["n"] for r in sink.of_type("a")] == [1, 2]

    def test_copies_records(self):
        sink = InMemorySink()
        record = {"event": "a"}
        sink.write(record)
        record["event"] = "mutated"
        assert sink.events[0]["event"] == "a"

    def test_clear(self):
        sink = InMemorySink()
        sink.write({"event": "a"})
        sink.clear()
        assert sink.events == []


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"event": "span", "name": "mine", "seconds": 0.5})
            sink.write({"event": "pipeline.run", "n_clusters": 3})
        records = read_jsonl(path)
        assert records == [
            {"event": "span", "name": "mine", "seconds": 0.5},
            {"event": "pipeline.run", "n_clusters": 3},
        ]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"event": "a"})
        sink.close()
        assert path.exists()

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for i in range(5):
            sink.write({"event": "tick", "i": i})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_non_serializable_values_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"event": "a", "path": tmp_path})
        sink.close()
        (record,) = read_jsonl(path)
        assert record["path"] == str(tmp_path)

    def test_no_file_until_first_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()
        sink.close()
        assert not path.exists()


class TestReadJsonl:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "a"}\nnot json\n')
        with pytest.raises(ConfigError, match="invalid JSONL"):
            read_jsonl(path)

    def test_rejects_non_object_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigError, match="not an object"):
            read_jsonl(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [r["event"] for r in read_jsonl(path)] == ["a", "b"]


class TestRegistrySinkIntegration:
    def test_emit_goes_to_sink(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sink=sink)
        registry.emit("surveillance.batch", batch_index=1, mine_seconds=0.2)
        (record,) = sink.events
        assert record == {
            "event": "surveillance.batch",
            "batch_index": 1,
            "mine_seconds": 0.2,
        }

    def test_close_emits_metrics_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry = MetricsRegistry(sink=JsonlSink(path))
        registry.counter("c").inc(3)
        registry.close()
        records = read_jsonl(path)
        assert records[-1]["event"] == "metrics"
        assert records[-1]["counters"] == {"c": 3}

    def test_null_sink_drops_everything(self):
        registry = MetricsRegistry(sink=NullSink())
        registry.emit("a")
        registry.counter("c").inc()
        # Aggregates survive even when the event stream is dropped.
        assert registry.snapshot().counters == {"c": 1}
