"""Process-memory gauges: procfs readings and the stage sampler."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError
from repro.obs import MemorySampler, current_rss_bytes, peak_rss_bytes
from repro.obs.memory import _read_proc_field

requires_procfs = pytest.mark.skipif(
    current_rss_bytes() is None, reason="no /proc/self/status on this platform"
)


@requires_procfs
def test_current_rss_is_plausible():
    rss = current_rss_bytes()
    # A running CPython with this test suite loaded sits well inside
    # 1 MiB .. 64 GiB on any supported machine.
    assert 2**20 < rss < 2**36


@requires_procfs
def test_peak_rss_at_least_current():
    assert peak_rss_bytes() >= current_rss_bytes()


def test_peak_rss_never_zero():
    peak = peak_rss_bytes()
    assert peak is None or peak > 0


def test_read_proc_field_missing_field():
    assert _read_proc_field("NoSuchFieldXYZ") is None


@requires_procfs
def test_sampler_attributes_allocation_to_its_stage():
    sampler = MemorySampler(interval=0.005)
    with sampler:
        sampler.stage("quiet")
        time.sleep(0.02)
        sampler.stage("hungry")
        blob = bytearray(64 * 2**20)
        time.sleep(0.03)
        del blob
    peaks = sampler.stage_peaks()
    assert peaks["hungry"] >= peaks["quiet"] + 48 * 2**20
    assert sampler.peak_bytes() == max(peaks.values())


@requires_procfs
def test_sampler_short_stage_still_sampled():
    """A stage shorter than the poll interval gets its synchronous sample."""
    sampler = MemorySampler(interval=5.0)
    with sampler:
        sampler.stage("blink")
    assert "blink" in sampler.stage_peaks()


def test_sampler_rejects_bad_arguments():
    with pytest.raises(ConfigError):
        MemorySampler(interval=0)
    sampler = MemorySampler()
    with pytest.raises(ConfigError):
        sampler.stage("")
    with sampler:
        with pytest.raises(ConfigError):
            sampler.start()
    sampler.stop()  # second stop is a no-op


def test_sampler_restartable_after_stop():
    sampler = MemorySampler(interval=0.01)
    with sampler:
        sampler.stage("first")
    with sampler:
        sampler.stage("second")
    peaks = sampler.stage_peaks()
    assert current_rss_bytes() is None or {"first", "second"} <= set(peaks)
