"""Tests for the metrics half of the observability layer."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_REGISTRY,
    InMemorySink,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    use_registry,
)


class FakeClock:
    """A monotonic clock advanced by hand for deterministic timer tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCounters:
    def test_counter_totals(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        registry.counter("y").inc(2)
        snapshot = registry.snapshot()
        assert snapshot.counters == {"x": 5, "y": 2}

    def test_counter_identity_is_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("rho").set(0.5)
        registry.gauge("rho").set(0.9)
        assert registry.snapshot().gauges == {"rho": 0.9}


class TestTimers:
    def test_single_span_duration(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("stage"):
            clock.advance(1.5)
        snapshot = registry.snapshot()
        assert snapshot.timer_seconds("stage") == pytest.approx(1.5)

    def test_nested_spans_record_under_paths(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("outer"):
            clock.advance(1.0)
            with registry.timer("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        snapshot = registry.snapshot()
        names = {t.name for t in snapshot.timers}
        assert names == {"outer", "outer/inner"}
        assert snapshot.timer_seconds("outer") == pytest.approx(3.5)
        assert snapshot.timer_seconds("outer/inner") == pytest.approx(2.0)
        # The nested span never records under its bare name.
        assert snapshot.timer_seconds("inner") == 0.0

    def test_repeated_spans_accumulate_calls(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        for _ in range(3):
            with registry.timer("stage"):
                clock.advance(1.0)
        (reading,) = registry.snapshot().timers
        assert reading.calls == 3
        assert reading.total_seconds == pytest.approx(3.0)
        assert reading.max_seconds == pytest.approx(1.0)

    def test_span_emits_event_to_sink(self):
        sink = InMemorySink()
        clock = FakeClock()
        registry = MetricsRegistry(sink=sink, clock=clock)
        with registry.timer("stage"):
            clock.advance(0.25)
        (record,) = sink.of_type("span")
        assert record["name"] == "stage"
        assert record["seconds"] == pytest.approx(0.25)

    def test_exception_still_closes_span(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with pytest.raises(ValueError):
            with registry.timer("stage"):
                clock.advance(1.0)
                raise ValueError("boom")
        assert registry.snapshot().timer_seconds("stage") == pytest.approx(1.0)
        # The stack unwound: a new span is top-level again.
        with registry.timer("after"):
            pass
        assert registry.snapshot().timer_seconds("after") >= 0.0
        assert "stage/after" not in {t.name for t in registry.snapshot().timers}


class TestSnapshotFormatting:
    def test_format_table_lists_spans_and_counters(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("pipeline.mine"):
            clock.advance(0.5)
        registry.counter("pipeline.clusters").inc(7)
        table = registry.snapshot().format_table()
        assert "pipeline.mine" in table
        assert "pipeline.clusters" in table
        assert "7" in table

    def test_empty_snapshot_formats(self):
        table = MetricsRegistry().snapshot().format_table()
        assert "no spans recorded" in table

    def test_as_dict_round_trip_shape(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("s"):
            clock.advance(1.0)
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        payload = registry.snapshot().as_dict()
        assert payload["timers"]["s"]["total_seconds"] == pytest.approx(1.0)
        assert payload["counters"] == {"c": 1}
        assert payload["gauges"] == {"g": 2.5}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        registry = NullRegistry()
        assert not registry.enabled
        registry.counter("x").inc(10)
        registry.gauge("g").set(1.0)
        with registry.timer("t"):
            pass
        registry.emit("event", a=1)
        snapshot = registry.snapshot()
        assert not snapshot.timers
        assert not snapshot.counters
        assert not snapshot.gauges

    def test_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.timer("a") is registry.timer("b")


class TestActiveRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(registry):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_nested_use_registry(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer
