"""End-to-end observability: a profiled run reports the §5.2 stages."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig, SurveillanceMonitor
from repro.faers import SyntheticConfig, SyntheticFAERSGenerator
from repro.obs import InMemorySink, MetricsRegistry

STAGES = (
    "pipeline.prepare",
    "pipeline.mine",
    "pipeline.filter",
    "pipeline.cluster",
)


@pytest.fixture(scope="module")
def profiled_run():
    reports = SyntheticFAERSGenerator(
        SyntheticConfig(n_reports=600, seed=7)
    ).generate()
    sink = InMemorySink()
    registry = MetricsRegistry(sink=sink)
    result = Maras(
        MarasConfig(min_support=4, clean=True), registry=registry
    ).run(reports)
    return result, registry, sink


class TestProfiledPipeline:
    def test_all_four_stages_have_nonzero_durations(self, profiled_run):
        result, _, _ = profiled_run
        assert result.metrics is not None
        for stage in STAGES:
            assert result.metrics.timer_seconds(stage) > 0.0, stage

    def test_mining_span_nested_under_mine_stage(self, profiled_run):
        result, _, _ = profiled_run
        names = {t.name for t in result.metrics.timers}
        assert "pipeline.mine/fpclose" in names

    def test_cleaning_span_nested_under_prepare(self, profiled_run):
        result, _, _ = profiled_run
        names = {t.name for t in result.metrics.timers}
        assert "pipeline.prepare/faers.clean" in names

    def test_counters_match_result(self, profiled_run):
        result, _, _ = profiled_run
        counters = result.metrics.counters
        assert counters["pipeline.clusters"] == len(result.clusters)
        assert counters["pipeline.transactions"] == len(result.dataset)
        assert counters["pipeline.closed_itemsets"] > 0
        assert counters["fpclose.closed_itemsets"] > 0
        assert counters["faers.clean.rows_in"] == 600

    def test_run_event_emitted(self, profiled_run):
        result, _, sink = profiled_run
        (record,) = sink.of_type("pipeline.run")
        assert record["n_clusters"] == len(result.clusters)

    def test_unprofiled_run_has_no_metrics(self):
        reports = SyntheticFAERSGenerator(
            SyntheticConfig(n_reports=200, seed=7)
        ).generate()
        result = Maras(MarasConfig(min_support=4, clean=False)).run(reports)
        assert result.metrics is None


class TestSurveillanceTelemetry:
    def test_per_batch_events(self, small_quarter_reports):
        sink = InMemorySink()
        registry = MetricsRegistry(sink=sink)
        monitor = SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False), registry=registry
        )
        half = len(small_quarter_reports) // 2
        monitor.ingest(small_quarter_reports[:half])
        monitor.ingest(small_quarter_reports[half:])
        events = sink.of_type("surveillance.batch")
        assert [e["batch_index"] for e in events] == [1, 2]
        assert all(e["mine_seconds"] > 0 for e in events)
        assert events[0]["rank_correlation"] is None
        assert events[1]["n_reports_total"] == len(small_quarter_reports)
        counters = registry.snapshot().counters
        assert counters["surveillance.batches"] == 2
        assert counters["surveillance.reports_ingested"] == len(
            small_quarter_reports
        )

    def test_mine_time_accumulates_in_registry(self, small_quarter_reports):
        registry = MetricsRegistry()
        monitor = SurveillanceMonitor(
            MarasConfig(min_support=4, clean=False), registry=registry
        )
        monitor.ingest(small_quarter_reports[:500])
        snapshot = registry.snapshot()
        assert snapshot.timer_seconds("surveillance.batch") > 0
        # The pipeline stages nested under the batch span.
        names = {t.name for t in snapshot.timers}
        assert "surveillance.batch/pipeline.mine" in names
