"""Golden fixture replayed as a stream: incremental end-state == golden.

The frozen golden dataset (including its trailing follow-up versions)
is cut into four ingest batches and folded through the incremental
surveillance monitor; the final export must match
``tests/golden/golden_export.json`` exactly — the same bar the one-shot
pipeline is held to. A drift here but not in the one-shot golden test
means the *incremental* path broke.
"""

from __future__ import annotations

import json

import pytest

from repro.core.export import export_result
from repro.core.incremental import SurveillanceMonitor
from repro.core.pipeline import MarasConfig

from tests.golden.regenerate import (
    DATASET_PATH,
    EXPORT_PATH,
    GOLDEN_CONFIG,
    report_from_dict,
    round_floats,
)

N_BATCHES = 4


@pytest.fixture(scope="module")
def golden_reports():
    rows = json.loads(DATASET_PATH.read_text())
    return [report_from_dict(row) for row in rows]


@pytest.fixture(scope="module")
def golden_expected():
    return json.loads(EXPORT_PATH.read_text())


def test_streamed_golden_export_matches_fixture(
    golden_reports, golden_expected
):
    config = MarasConfig(**GOLDEN_CONFIG, incremental=True)
    size = -(-len(golden_reports) // N_BATCHES)
    with SurveillanceMonitor(config) as monitor:
        for start in range(0, len(golden_reports), size):
            monitor.ingest(golden_reports[start : start + size])
        actual = json.loads(
            json.dumps(round_floats(export_result(monitor.result)))
        )
    assert actual == golden_expected, (
        "incremental stream export drifted from the golden fixture "
        "(the one-shot golden test pins the fixture itself)"
    )
