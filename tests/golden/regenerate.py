"""Regenerate the golden end-to-end regression fixture.

Run when an *intentional* output change lands (new score, format bump,
different canonical ordering):

    PYTHONPATH=src python tests/golden/regenerate.py

then review the ``golden_export.json`` diff by hand before committing —
every changed byte is a behavior change the PR must justify. The
dataset file never changes on regeneration (it is a pure function of
the seeds below); only the expected export does.

The dataset is deliberately awkward: two quarters of synthetic reports
plus hand-written follow-up versions re-using existing case ids, so the
frozen run exercises cleaning (case-version merging), multi-quarter
sharding, and the full rule→cluster→export chain.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.export import export_result
from repro.core.pipeline import Maras, MarasConfig
from repro.faers.schema import CaseReport, ReportType
from repro.faers.synthetic import SyntheticConfig, SyntheticFAERSGenerator

HERE = Path(__file__).resolve().parent
DATASET_PATH = HERE / "golden_dataset.json"
EXPORT_PATH = HERE / "golden_export.json"

#: The frozen pipeline configuration of the golden run.
GOLDEN_CONFIG = dict(min_support=2, max_drugs=4, clean=True)
#: Exported floats are rounded to this many digits before comparison,
#: so the fixture pins behavior, not platform rounding noise.
PRECISION = 10


def build_reports() -> list[CaseReport]:
    reports: list[CaseReport] = []
    for quarter, seed in (("2014Q1", 17), ("2014Q2", 18)):
        config = SyntheticConfig(
            n_reports=150, n_drugs=80, n_adrs=25, seed=seed, quarter=quarter
        )
        reports.extend(SyntheticFAERSGenerator(config).generate())
    # Follow-up versions of existing cases: the cleaner must merge these
    # into their originals instead of counting them twice.
    followups = [
        CaseReport.build(
            reports[3].case_id,
            reports[3].drugs + ("aspirin",),
            reports[3].adrs,
            quarter="2014Q1",
        ),
        CaseReport.build(
            reports[80].case_id,
            reports[80].drugs,
            reports[80].adrs + ("nausea",),
            quarter="2014Q2",
        ),
        CaseReport.build(
            reports[120].case_id,
            reports[120].drugs,
            reports[120].adrs,
            quarter="2014Q2",
        ),
    ]
    return reports + followups


def report_to_dict(report: CaseReport) -> dict:
    return {
        "case_id": report.case_id,
        "drugs": list(report.drugs),
        "adrs": list(report.adrs),
        "report_type": report.report_type.value,
        "quarter": report.quarter,
        "age": report.age,
        "sex": report.sex,
        "country": report.country,
        "event_date": report.event_date,
    }


def report_from_dict(row: dict) -> CaseReport:
    return CaseReport.build(
        row["case_id"],
        row["drugs"],
        row["adrs"],
        report_type=ReportType(row["report_type"]),
        quarter=row["quarter"],
        age=row["age"],
        sex=row["sex"],
        country=row["country"],
        event_date=row["event_date"],
    )


def round_floats(value, precision: int = PRECISION):
    if isinstance(value, float):
        return round(value, precision)
    if isinstance(value, dict):
        return {key: round_floats(item, precision) for key, item in value.items()}
    if isinstance(value, list):
        return [round_floats(item, precision) for item in value]
    return value


def golden_export(reports: list[CaseReport]) -> dict:
    result = Maras(MarasConfig(**GOLDEN_CONFIG)).run(reports)
    return round_floats(export_result(result))


def main() -> None:
    reports = build_reports()
    DATASET_PATH.write_text(
        json.dumps([report_to_dict(r) for r in reports], indent=1) + "\n"
    )
    EXPORT_PATH.write_text(
        json.dumps(golden_export(reports), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {DATASET_PATH} ({len(reports)} reports)")
    print(f"wrote {EXPORT_PATH}")


if __name__ == "__main__":
    main()
