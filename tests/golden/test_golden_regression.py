"""End-to-end golden regression: frozen dataset in, frozen export out.

Any change that perturbs mining, merging, cleaning, scoring, stable
ids, or export formatting fails here loudly — with a diff of which
top-level keys and cluster records moved. If the change is
*intentional*, regenerate the fixture (see ``regenerate.py``) and
review the diff in code review; that diff IS the behavior change.
"""

from __future__ import annotations

import json

import pytest

from repro.core.export import export_result
from repro.core.pipeline import Maras, MarasConfig

from tests.golden.regenerate import (
    DATASET_PATH,
    EXPORT_PATH,
    GOLDEN_CONFIG,
    report_from_dict,
    round_floats,
)

REGEN_HINT = (
    "golden export drifted; if intentional, run "
    "`PYTHONPATH=src python tests/golden/regenerate.py` and review the diff"
)


@pytest.fixture(scope="module")
def golden_reports():
    rows = json.loads(DATASET_PATH.read_text())
    return [report_from_dict(row) for row in rows]


@pytest.fixture(scope="module")
def golden_expected():
    return json.loads(EXPORT_PATH.read_text())


def run_export(reports, **overrides):
    result = Maras(MarasConfig(**{**GOLDEN_CONFIG, **overrides})).run(reports)
    # The fixture is committed through json round-trip, so compare
    # round-tripped values (tuples→lists, int-floats→ints, etc.).
    return json.loads(json.dumps(round_floats(export_result(result))))


def assert_matches_golden(actual, expected):
    if actual == expected:
        return
    drifted = [
        key for key in expected if actual.get(key) != expected[key]
    ] + [key for key in actual if key not in expected]
    detail = [f"drifted keys: {sorted(set(drifted))}"]
    if "clusters" in drifted:
        expected_ids = [c["id"] for c in expected["clusters"]]
        actual_ids = [c["id"] for c in actual["clusters"]]
        detail.append(
            f"clusters: {len(actual_ids)} vs {len(expected_ids)} golden"
        )
        detail.append(f"missing ids: {sorted(set(expected_ids) - set(actual_ids))}")
        detail.append(f"new ids: {sorted(set(actual_ids) - set(expected_ids))}")
        if actual_ids != expected_ids and not (
            set(expected_ids) ^ set(actual_ids)
        ):
            detail.append("same cluster set but DIFFERENT ORDER")
        for got, want in zip(actual["clusters"], expected["clusters"]):
            if got != want:
                fields = [k for k in want if got.get(k) != want[k]]
                detail.append(
                    f"first differing cluster {want['id']}: fields {fields}"
                )
                break
    pytest.fail(REGEN_HINT + "\n" + "\n".join(detail))


def test_dataset_fixture_is_intact(golden_reports):
    # 300 generated + 3 follow-up versions; cleaning merges the
    # follow-ups, so the mined dataset is smaller — pin both.
    assert len(golden_reports) == 303
    case_ids = [r.case_id for r in golden_reports]
    assert len(set(case_ids)) == 300


def test_pipeline_reproduces_golden_export(golden_reports, golden_expected):
    assert_matches_golden(run_export(golden_reports), golden_expected)


def test_sharded_pipeline_reproduces_golden_export(
    golden_reports, golden_expected
):
    # The same bytes must come out of the 2-worker sharded run: the
    # golden file doubles as a cross-process determinism fixture.
    for strategy in ("hash", "quarter"):
        actual = run_export(
            golden_reports, n_workers=2, shard_strategy=strategy
        )
        assert_matches_golden(actual, golden_expected)
